#pragma once

#include <cstdint>
#include <functional>

#include <string>

#include "common/ids.hpp"
#include "net/fault_hook.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

/// \file network.hpp
/// Shared-segment LAN model.
///
/// The paper's testbed is a single 10 Mbps Ethernet segment connecting the
/// server and all client workstations. We model the segment as one FIFO
/// transmission resource: each message occupies the wire for
/// `bytes * 8 / bandwidth` seconds, plus a fixed per-message protocol
/// latency that overlaps with other transmissions. Client-to-client traffic
/// in the LS configuration is relayed by a *directory server* (paper §5.1),
/// which we model as a second wire occupancy plus a forwarding delay.

namespace rtdb::net {

/// Tunable parameters of the LAN model.
struct NetworkConfig {
  /// Segment bandwidth in bits per second (paper: 10 Mbps Ethernet).
  double bandwidth_bps = 10e6;

  /// Fixed one-way protocol/processing latency per message (both stacks),
  /// overlapped with other transmissions.
  sim::Duration fixed_latency = sim::msec(1.0);

  /// Extra store-and-forward delay added by the directory server for
  /// client-to-client messages.
  sim::Duration directory_delay = sim::msec(0.5);

  /// Wire-level framing overhead added to every message's payload.
  std::uint64_t header_bytes = 64;

  /// Payload sizes used by the protocols (bytes).
  std::uint64_t object_bytes = 2048;   ///< one 2 KB database object
  std::uint64_t control_bytes = 64;    ///< requests, grants, recalls
  std::uint64_t txn_bytes = 512;       ///< a shipped transaction descriptor
  std::uint64_t result_bytes = 256;    ///< transaction / sub-task results

  /// Returns an empty string when the configuration is physically
  /// meaningful, else a human-readable description of the first problem
  /// (non-positive bandwidth, negative durations). rtdbctl refuses to run
  /// with an invalid configuration.
  [[nodiscard]] std::string validate() const;
};

/// One shared Ethernet segment with per-kind message accounting.
///
/// Usage: `net.send(src, dst, kind, bytes, fn)` schedules `fn` to run at the
/// simulated delivery instant. Local sends (src == dst) cost a negligible
/// fixed delay and are not counted as network messages — the paper's message
/// tables count only traffic that crossed the wire.
class Network {
 public:
  Network(sim::Simulator& sim, NetworkConfig config)
      : sim_(sim), config_(config) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends a message of kind `K`; invokes `on_delivery` when it arrives.
  /// `payload_bytes` excludes the frame header (added internally).
  /// Client-to-client messages automatically route via the directory server
  /// (two wire occupancies). Returns the delivery time.
  ///
  /// The kind is a template parameter and the endpoints are typed
  /// (`ClientId` or `net::kServer`): a call whose endpoints contradict
  /// `direction_of(K)` — e.g. a client sourcing an ObjectShip — fails to
  /// compile. Raw SiteId endpoints are rejected (no EndpointTraits).
  template <MessageKind K, TypedEndpoint Src, TypedEndpoint Dst>
  sim::SimTime send(Src src, Dst dst, std::uint64_t payload_bytes,
                    sim::Simulator::Callback on_delivery) {
    check_direction<K, Src, Dst>();
    return send_raw(EndpointTraits<Src>::site(src),
                    EndpointTraits<Dst>::site(dst), K, payload_bytes,
                    std::move(on_delivery));
  }

  /// Convenience overload picking the configured size for the kind.
  template <MessageKind K, TypedEndpoint Src, TypedEndpoint Dst>
  sim::SimTime send(Src src, Dst dst, sim::Simulator::Callback on_delivery) {
    check_direction<K, Src, Dst>();
    return send_raw(EndpointTraits<Src>::site(src),
                    EndpointTraits<Dst>::site(dst), K, default_bytes(K),
                    std::move(on_delivery));
  }

  /// A logical batch that travels as `count` back-to-back wire messages of
  /// the kind's default size (e.g. one request frame per object, as the
  /// paper's message tables count them) but is processed on arrival as one
  /// unit: `on_delivery` fires once, when the last frame lands.
  template <MessageKind K, TypedEndpoint Src, TypedEndpoint Dst>
  sim::SimTime send_batch(Src src, Dst dst, std::size_t count,
                          sim::Simulator::Callback on_delivery) {
    check_direction<K, Src, Dst>();
    return send_batch_raw(EndpointTraits<Src>::site(src),
                          EndpointTraits<Dst>::site(dst), K, count,
                          std::move(on_delivery));
  }

  /// Per-kind counters for the whole run.
  [[nodiscard]] const MessageStats& stats() const { return stats_; }
  MessageStats& stats() { return stats_; }

  /// Time-averaged utilization of the segment in [0,1].
  double utilization();

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Resets counters (not in-flight messages); used between warm-up and
  /// measurement phases.
  void reset_stats();

  /// Observer invoked for every counted (non-loopback) send with the full
  /// frame size. Purely passive — the telemetry layer uses it to record
  /// typed message events. Unset (the default) costs one branch per send.
  using SendHook = std::function<void(SiteId src, SiteId dst,
                                      MessageKind kind,
                                      std::uint64_t frame_bytes)>;
  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

  /// Installs the fault-injection seam (see net/fault_hook.hpp). Not owned.
  /// Unset (the default) costs one branch per send and leaves every
  /// delivery schedule bit-identical to the fault-free model.
  void set_fault_hook(FaultHook* hook) { fault_ = hook; }
  [[nodiscard]] bool faults_enabled() const { return fault_ != nullptr; }

 private:
  /// The compile-time direction gate shared by every typed entry point.
  template <MessageKind K, class Src, class Dst>
  static constexpr void check_direction() {
    static_assert(endpoint_matches(direction_of(K).src,
                                   EndpointTraits<Src>::kCategory),
                  "message kind cannot originate at this endpoint "
                  "(see direction_of in net/message.hpp)");
    static_assert(endpoint_matches(direction_of(K).dst,
                                   EndpointTraits<Dst>::kCategory),
                  "message kind cannot be delivered to this endpoint "
                  "(see direction_of in net/message.hpp)");
  }

  /// Runtime-kind core shared by the typed templates. Private: the typed
  /// `send<K>` front door is the only way to choose a kind from outside.
  sim::SimTime send_raw(SiteId src, SiteId dst, MessageKind kind,
                        std::uint64_t payload_bytes,
                        sim::Simulator::Callback on_delivery);

  sim::SimTime send_batch_raw(SiteId src, SiteId dst, MessageKind kind,
                              std::size_t count,
                              sim::Simulator::Callback on_delivery);

  /// Seconds the wire is occupied transmitting `bytes`.
  sim::Duration tx_time(std::uint64_t bytes) const {
    return sim::Duration{static_cast<double>(bytes) * 8.0 /
                         config_.bandwidth_bps};
  }

  /// Reserves the wire for one transmission starting no earlier than now;
  /// returns the instant the transmission completes.
  sim::SimTime occupy_wire(sim::Duration tx);

  std::uint64_t default_bytes(MessageKind kind) const;

  sim::Simulator& sim_;
  NetworkConfig config_;
  MessageStats stats_;
  SendHook send_hook_;
  FaultHook* fault_ = nullptr;
  sim::SimTime wire_free_at_{};
  sim::Duration busy_accum_{};  ///< total wire-busy time
  sim::SimTime stats_epoch_{};  ///< start of the current accounting window
};

}  // namespace rtdb::net
