#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.hpp"

/// \file include_graph.hpp
/// The subsystem layering contract, derived from real `#include` edges.
///
/// The architecture is a DAG (lower layers never see higher ones):
///
///   common  ← sim ← net ← {fault, obs}
///             sim ← {storage, lock}
///             lock ← txn ← workload
///             everything ← core
///   lint depends on nothing (it must lint a broken tree).
///
/// The table below is the single source of truth the `layering` rule
/// enforces; growing a new edge means editing it *here*, in review, instead
/// of discovering the cycle at link time three PRs later. This is what
/// keeps `src/lock` from ever growing a dependency on `src/core` while the
/// partitioned multi-server lock table lands.

namespace rtdb::lint {

/// True when `name` is one of the src/ subsystems in the table.
[[nodiscard]] bool is_subsystem(std::string_view name);

/// Direct dependencies subsystem `from` is allowed (empty set for unknown).
[[nodiscard]] const std::set<std::string>& allowed_deps(std::string_view from);

/// True when `from` may include headers of `to` (self-includes allowed).
[[nodiscard]] bool layer_allowed(std::string_view from, std::string_view to);

/// Cross-file aggregate built from lexed sources: which subsystems each
/// file and subsystem actually reaches. Used by tests and tooling; the
/// per-file `layering` rule needs only layer_allowed().
class IncludeGraph {
 public:
  void add(const SourceFile& f);

  /// subsystem -> set of subsystems it includes (directly), from real edges.
  [[nodiscard]] const std::map<std::string, std::set<std::string>>&
  subsystem_deps() const {
    return deps_;
  }

  struct Violation {
    std::string file;
    int line;
    std::string from;
    std::string to;
    std::string include;  ///< the offending include path as written
  };
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

 private:
  std::map<std::string, std::set<std::string>> deps_;
  std::vector<Violation> violations_;
};

}  // namespace rtdb::lint
