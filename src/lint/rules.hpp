#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lint/rule.hpp"

/// \file rules.hpp
/// Factories for the individual rules (one translation unit per family).
/// make_default_rules() in rules.cpp assembles the shipped catalog.

namespace rtdb::lint {

// rules_tokens.cpp — token-correct ports of the old grep lints.
std::unique_ptr<Rule> make_raw_new_delete_rule();
std::unique_ptr<Rule> make_nondet_rng_rule();
std::unique_ptr<Rule> make_wall_clock_rule();

// rules_determinism.cpp — semantic determinism rules grep cannot express.
std::unique_ptr<Rule> make_unordered_iter_rule();
std::unique_ptr<Rule> make_ptr_key_rule();
std::unique_ptr<Rule> make_float_accum_rule();

// rules_layering.cpp — the subsystem DAG, from real #include edges.
std::unique_ptr<Rule> make_layering_rule();

// rules_concurrency.cpp — concurrency-readiness (scope-aware, scopes.hpp).
std::unique_ptr<Rule> make_mutable_static_rule();
std::unique_ptr<Rule> make_shared_state_rule();

// rules_seam.cpp — protocol traffic goes through Network::send/FaultHook.
std::unique_ptr<Rule> make_net_seam_rule();

// rules_hotpath.cpp — call-graph allocation prover (call_graph.hpp).
std::unique_ptr<Rule> make_hot_path_alloc_rule();

// rules_protocol.cpp — MessageKind switch totality + dispatch coverage.
std::unique_ptr<Rule> make_protocol_totality_rule();
std::unique_ptr<Rule> make_protocol_dispatch_rule();

// rules.cpp — suppression hygiene (needs the full catalog's names).
std::unique_ptr<Rule> make_suppression_hygiene_rule(
    std::vector<std::string> known_rules);

}  // namespace rtdb::lint
