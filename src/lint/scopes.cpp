#include "lint/scopes.hpp"

#include <algorithm>

#include "lint/rules_util.hpp"

namespace rtdb::lint {
namespace {

using detail::is_id;
using detail::is_punct;
using detail::match_angle;
using detail::match_paren;
using detail::npos;

bool is_const_marker(const Token& t) {
  return is_id(t, "const") || is_id(t, "constexpr") || is_id(t, "constinit");
}

bool is_access_spec(const Token& t) {
  return is_id(t, "public") || is_id(t, "private") || is_id(t, "protected");
}

/// Identifiers that can never start a variable/function declarator we care
/// about; a declaration led by one is skipped to its `;`.
bool is_skip_decl_keyword(const Token& t) {
  return is_id(t, "using") || is_id(t, "typedef") || is_id(t, "friend") ||
         is_id(t, "static_assert") || is_id(t, "concept") ||
         is_id(t, "goto") || is_id(t, "asm");
}

/// The walker: one pass over the token stream with an explicit scope stack.
/// Function bodies are skipped wholesale (call extraction happens later, in
/// call_graph.cpp, over the recorded body ranges).
class ScopeWalker {
 public:
  explicit ScopeWalker(const SourceFile& f) : ts_(f.tokens()) {}

  ScopeInfo run() {
    std::size_t i = 0;
    while (i < ts_.size()) i = step(i);
    return std::move(info_);
  }

 private:
  enum class ScopeKind { kNamespace, kClass, kOpaque };
  struct Scope {
    ScopeKind kind;
    std::string name;  ///< namespace or class name ("" for anonymous)
  };

  [[nodiscard]] bool in_class() const {
    return !stack_.empty() && stack_.back().kind == ScopeKind::kClass;
  }

  [[nodiscard]] std::string current_class() const {
    return in_class() ? stack_.back().name : std::string();
  }

  /// Scope-qualified prefix ("rtdb::sim::EventQueue::") from the stack.
  [[nodiscard]] std::string qualifier() const {
    std::string q;
    for (const Scope& s : stack_) {
      if (s.kind == ScopeKind::kOpaque || s.name.empty()) continue;
      q += s.name;
      q += "::";
    }
    return q;
  }

  /// Index one past a balanced `{...}` group opening at `open`.
  [[nodiscard]] std::size_t past_braces(std::size_t open) const {
    const std::size_t close = match_paren(ts_, open, "{", "}");
    return close == npos ? ts_.size() : close + 1;
  }

  /// Index one past the next top-level `;` (balanced through all brackets).
  [[nodiscard]] std::size_t past_semicolon(std::size_t from) const {
    int depth = 0;
    for (std::size_t j = from; j < ts_.size(); ++j) {
      const Token& t = ts_[j];
      if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
      else if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) {
        --depth;
      } else if (depth <= 0 && is_punct(t, ";")) {
        return j + 1;
      }
    }
    return ts_.size();
  }

  /// Dispatches one construct at declaration scope; returns the next index.
  std::size_t step(std::size_t i) {
    const Token& t = ts_[i];
    if (t.kind == TokKind::kDirective || is_punct(t, ";")) return i + 1;

    if (is_punct(t, "}")) {
      if (!stack_.empty()) stack_.pop_back();
      return i + 1;
    }

    if (is_id(t, "template")) {
      // Skip the parameter list; the following declaration parses normally.
      if (i + 1 < ts_.size() && is_punct(ts_[i + 1], "<")) {
        const std::size_t close = match_angle(ts_, i + 1);
        if (close != npos) return close + 1;
      }
      return i + 1;
    }

    if (is_id(t, "namespace")) return enter_namespace(i);
    if (is_id(t, "class") || is_id(t, "struct") || is_id(t, "union")) {
      return enter_class(i);
    }
    if (is_id(t, "enum")) return skip_enum(i);
    if (is_skip_decl_keyword(t)) return past_semicolon(i);

    if (is_id(t, "extern")) {
      // `extern "C" { ... }` is transparent; `extern "C" decl;` and plain
      // `extern` declarations parse as the declaration they prefix.
      if (i + 1 < ts_.size() && ts_[i + 1].kind == TokKind::kString &&
          i + 2 < ts_.size() && is_punct(ts_[i + 2], "{")) {
        stack_.push_back({ScopeKind::kNamespace, ""});
        return i + 3;
      }
      return parse_declaration(i);
    }

    if (in_class() && is_access_spec(t) && i + 1 < ts_.size() &&
        is_punct(ts_[i + 1], ":")) {
      return i + 2;
    }

    // A stray opener we cannot classify: stay safe, skip it balanced.
    if (is_punct(t, "{")) return past_braces(i);

    return parse_declaration(i);
  }

  std::size_t enter_namespace(std::size_t i) {
    std::size_t j = i + 1;
    std::vector<std::string> parts;
    while (j < ts_.size() && ts_[j].kind == TokKind::kIdentifier) {
      // Alias (`namespace fs = std::filesystem;`): not a scope.
      if (j + 1 < ts_.size() && is_punct(ts_[j + 1], "=")) {
        return past_semicolon(j);
      }
      parts.push_back(ts_[j].text);
      if (j + 1 < ts_.size() && is_punct(ts_[j + 1], "::")) {
        j += 2;
        continue;
      }
      ++j;
      break;
    }
    if (j < ts_.size() && is_punct(ts_[j], "{")) {
      if (parts.empty()) parts.emplace_back();  // anonymous namespace
      // The C++17 compact form `namespace a::b {` has ONE closing brace, so
      // it gets one stack entry carrying the joined name.
      std::string joined;
      for (const std::string& p : parts) {
        if (!joined.empty()) joined += "::";
        joined += p;
      }
      stack_.push_back({ScopeKind::kNamespace, joined});
      return j + 1;
    }
    return past_semicolon(i);
  }

  std::size_t enter_class(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (j < ts_.size()) {
      const Token& t = ts_[j];
      if (is_punct(t, ";")) return j + 1;  // forward declaration
      if (is_punct(t, "{")) break;
      if (is_punct(t, "(")) {
        // `struct` used in a declarator (`struct stat st;` style) or a
        // macro — not a definition we can enter. Reparse as declaration.
        return parse_declaration(j);
      }
      if (is_punct(t, ":")) {
        // Base list: skip to the body brace, stepping over template args.
        while (j < ts_.size() && !is_punct(ts_[j], "{")) {
          if (is_punct(ts_[j], "<")) {
            const std::size_t close = match_angle(ts_, j);
            if (close == npos) break;
            j = close;
          }
          ++j;
        }
        break;
      }
      if (t.kind == TokKind::kIdentifier && !is_id(t, "final") &&
          !is_id(t, "alignas")) {
        name = t.text;
      }
      if (is_punct(t, "<")) {  // explicit specialization args
        const std::size_t close = match_angle(ts_, j);
        if (close == npos) return past_semicolon(j);
        j = close;
      }
      ++j;
    }
    if (j < ts_.size() && is_punct(ts_[j], "{")) {
      stack_.push_back({ScopeKind::kClass, name});
      return j + 1;
    }
    return past_semicolon(i);
  }

  std::size_t skip_enum(std::size_t i) {
    std::size_t j = i + 1;
    while (j < ts_.size() && !is_punct(ts_[j], "{") &&
           !is_punct(ts_[j], ";")) {
      ++j;
    }
    if (j < ts_.size() && is_punct(ts_[j], "{")) {
      const std::size_t past = past_braces(j);
      return past < ts_.size() && is_punct(ts_[past], ";") ? past + 1 : past;
    }
    return j < ts_.size() ? j + 1 : j;
  }

  /// After a parameter list closed at `close`, walks the trailing
  /// qualifiers (const/noexcept/&/&&/override/final/trailing return) and
  /// a constructor initializer list. Returns the index of the body `{`,
  /// or npos when this is not a function definition.
  [[nodiscard]] std::size_t find_body_brace(std::size_t close) const {
    std::size_t j = close + 1;
    while (j < ts_.size()) {
      const Token& t = ts_[j];
      if (is_punct(t, "{")) return j;
      if (is_punct(t, ";") || is_punct(t, ",") || is_punct(t, ")") ||
          is_punct(t, "=")) {
        return npos;  // declaration / `= default` / part of an expression
      }
      if (is_punct(t, ":")) return find_body_after_ctor_init(j);
      if (is_id(t, "noexcept") && j + 1 < ts_.size() &&
          is_punct(ts_[j + 1], "(")) {
        const std::size_t c = match_paren(ts_, j + 1, "(", ")");
        if (c == npos) return npos;
        j = c + 1;
        continue;
      }
      if (is_punct(t, "->")) {
        // Trailing return type: scan to the body/terminator, stepping over
        // template argument lists.
        ++j;
        while (j < ts_.size() && !is_punct(ts_[j], "{") &&
               !is_punct(ts_[j], ";") && !is_punct(ts_[j], "=")) {
          if (is_punct(ts_[j], "<")) {
            const std::size_t c = match_angle(ts_, j);
            if (c == npos) return npos;
            j = c;
          }
          ++j;
        }
        return j < ts_.size() && is_punct(ts_[j], "{") ? j : npos;
      }
      if (t.kind == TokKind::kIdentifier || is_punct(t, "&") ||
          is_punct(t, "&&")) {
        ++j;  // const, noexcept, override, final, ref-qualifiers, macros
        continue;
      }
      return npos;
    }
    return npos;
  }

  /// At the `:` of a constructor initializer list: walks
  /// `member(init), base<T>{init}, ...` and returns the body `{`, or npos.
  [[nodiscard]] std::size_t find_body_after_ctor_init(std::size_t colon) const {
    std::size_t j = colon + 1;
    while (j < ts_.size()) {
      // One initializer: qualified-id (with optional template args) then a
      // balanced (...) or {...} group.
      while (j < ts_.size() &&
             (ts_[j].kind == TokKind::kIdentifier || is_punct(ts_[j], "::") ||
              is_punct(ts_[j], "~"))) {
        ++j;
        if (j < ts_.size() && is_punct(ts_[j], "<")) {
          const std::size_t c = match_angle(ts_, j);
          if (c == npos) return npos;
          j = c + 1;
        }
      }
      if (j >= ts_.size()) return npos;
      if (is_punct(ts_[j], "(")) {
        const std::size_t c = match_paren(ts_, j, "(", ")");
        if (c == npos) return npos;
        j = c + 1;
      } else if (is_punct(ts_[j], "{")) {
        const std::size_t c = match_paren(ts_, j, "{", "}");
        if (c == npos) return npos;
        j = c + 1;
      } else if (is_punct(ts_[j], "...")) {
        ++j;  // pack expansion after the init group — tolerated either side
        continue;
      } else {
        return npos;
      }
      if (j < ts_.size() && is_punct(ts_[j], "...")) ++j;
      if (j < ts_.size() && is_punct(ts_[j], ",")) {
        ++j;
        continue;
      }
      return j < ts_.size() && is_punct(ts_[j], "{") ? j : npos;
    }
    return npos;
  }

  /// Reads the declarator name ending just before the `(` at `paren`,
  /// walking back over `A::B<T>::` qualification. Returns false when the
  /// token before `(` cannot name a function.
  bool read_callable_name(std::size_t paren, std::string& name,
                          std::string& written_class, int& line) const {
    if (paren == 0) return false;
    std::size_t j = paren - 1;

    // `operator@` / `operator()` / `operator[]` / `operator bool`.
    for (std::size_t back = (j >= 4 ? j - 4 : 0); back <= j; ++back) {
      if (is_id(ts_[back], "operator")) {
        name = "operator";
        for (std::size_t k = back + 1; k <= j; ++k) name += ts_[k].text;
        line = ts_[back].line;
        // Qualification before `operator` (rare out-of-line case).
        written_class = written_class_before(back);
        return true;
      }
    }

    if (ts_[j].kind != TokKind::kIdentifier) return false;
    name = ts_[j].text;
    line = ts_[j].line;
    if (j > 0 && is_punct(ts_[j - 1], "~")) {
      name = "~" + name;
      --j;
    }
    written_class = written_class_before(j);
    return true;
  }

  /// The class name written immediately before token `at` as a
  /// `Class::`/`Class<T>::` qualifier, or "".
  [[nodiscard]] std::string written_class_before(std::size_t at) const {
    if (at < 2 || !is_punct(ts_[at - 1], "::")) return {};
    std::size_t j = at - 2;
    if (is_punct(ts_[j], ">")) {
      // Walk back over the template argument list to its `<`.
      int depth = 0;
      while (true) {
        if (is_punct(ts_[j], ">")) ++depth;
        else if (is_punct(ts_[j], ">>")) depth += 2;
        else if (is_punct(ts_[j], "<")) --depth;
        if (depth == 0 || j == 0) break;
        --j;
      }
      if (j == 0) return {};
      --j;
    }
    return ts_[j].kind == TokKind::kIdentifier ? ts_[j].text : std::string();
  }

  /// Parses one declaration at namespace or class scope starting at `i`.
  /// Records a FunctionDef (and skips the body), a MemberDecl, or a
  /// NamespaceVar; returns the index after the construct.
  std::size_t parse_declaration(std::size_t i) {
    bool saw_const = false;
    bool saw_static = false;
    bool saw_mutable = false;
    bool saw_paren = false;
    bool saw_extern = false;
    std::size_t j = i;
    while (j < ts_.size()) {
      const Token& t = ts_[j];
      if (is_const_marker(t)) saw_const = true;
      if (is_id(t, "static")) saw_static = true;
      if (is_id(t, "mutable")) saw_mutable = true;
      if (is_id(t, "extern")) saw_extern = true;
      if (is_id(t, "template") && j + 1 < ts_.size() &&
          is_punct(ts_[j + 1], "<")) {
        const std::size_t c = match_angle(ts_, j + 1);
        if (c == npos) return past_semicolon(j);
        j = c + 1;
        continue;
      }
      if (is_punct(t, "<")) {
        const std::size_t c = match_angle(ts_, j);
        if (c == npos) {
          ++j;  // a stray comparison — not at decl scope in practice
          continue;
        }
        j = c + 1;
        continue;
      }
      if (is_punct(t, "[") && j + 1 < ts_.size() && is_punct(ts_[j + 1], "[")) {
        // [[attribute]]
        const std::size_t c = match_paren(ts_, j, "[", "]");
        if (c == npos) return past_semicolon(j);
        j = c + 1;
        continue;
      }
      if (is_punct(t, "=")) {
        // An initializer — unless a parameter list came first, in which
        // case this is `= default` / `= delete` on a function, not a var.
        const std::size_t end = past_semicolon(j);
        if (!saw_paren && !saw_extern) {
          record_variable(i, end, saw_const, saw_static, saw_mutable);
        }
        return end;
      }
      if (is_punct(t, "{")) {
        if (saw_paren) {
          // A brace after a parameter list that find_body_brace rejected:
          // a function definition shape we could not classify. Skip it
          // balanced and record nothing — prefer a miss over a wrong range.
          return past_braces(j);
        }
        // Brace initializer of a variable.
        const std::size_t end = past_semicolon(j);
        if (!saw_extern) {
          record_variable(i, end, saw_const, saw_static, saw_mutable);
        }
        return end;
      }
      if (is_punct(t, ";")) {
        if (!saw_paren && !saw_extern) {
          record_variable(i, j + 1, saw_const, saw_static, saw_mutable);
        }
        return j + 1;
      }
      if (is_punct(t, "(")) {
        saw_paren = true;
        const std::size_t close = match_paren(ts_, j, "(", ")");
        if (close == npos) return ts_.size();
        std::string name, written_class;
        int line = 0;
        const bool callable =
            read_callable_name(j, name, written_class, line);
        const std::size_t body = callable ? find_body_brace(close) : npos;
        if (body != npos) {
          record_function(name, written_class, line, body);
          return past_braces(body);
        }
        // Not a definition: a declaration, a ctor-style init, or a macro
        // invocation. Skip past the group and keep scanning (a `;` or an
        // initializer will terminate the declaration).
        j = close + 1;
        continue;
      }
      ++j;
    }
    return ts_.size();
  }

  void record_function(const std::string& name,
                       const std::string& written_class, int line,
                       std::size_t body_brace) {
    FunctionDef fn;
    fn.name = name;
    fn.line = line;
    fn.class_name = !written_class.empty() ? written_class : current_class();
    std::string q = qualifier();
    if (!written_class.empty()) q += written_class + "::";
    fn.qualified_name = q + name;
    fn.body_begin = body_brace + 1;
    const std::size_t close = match_paren(ts_, body_brace, "{", "}");
    fn.body_end = close == npos ? ts_.size() : close;
    info_.functions.push_back(std::move(fn));
  }

  /// Records a member/namespace variable from the declaration tokens in
  /// [begin, end). `end` is one past the `;`.
  void record_variable(std::size_t begin, std::size_t end, bool is_const,
                       bool is_static, bool is_mutable) {
    if (end <= begin + 2) return;  // need at least `type name ;`
    // The declared name: last top-level identifier before the terminator
    // (`=`, brace-init, bitfield `:`, or the final `;`).
    std::string name;
    std::size_t name_idx = ts_.size();
    int line = 0;
    int ident_run = 0;
    int depth = 0;
    for (std::size_t j = begin; j + 1 < end; ++j) {
      const Token& t = ts_[j];
      if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
      else if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) {
        --depth;
      }
      if (depth > 0) continue;
      if (is_punct(t, "=") || is_punct(t, "{") || is_punct(t, ":")) break;
      if (t.kind == TokKind::kIdentifier) {
        ++ident_run;
        if (!is_const_marker(t) && !is_id(t, "static") &&
            !is_id(t, "mutable") && !is_id(t, "inline") &&
            !is_id(t, "extern") && !is_id(t, "thread_local") &&
            !is_id(t, "volatile") && !is_id(t, "unsigned") &&
            !is_id(t, "signed")) {
          name = t.text;
          name_idx = j;
          line = t.line;
        }
      }
    }
    if (name.empty() || ident_run < 2) return;  // macro line / stray token
    const std::string type = principal_type_before(name_idx, begin);
    if (in_class()) {
      info_.members.push_back(
          MemberDecl{current_class(), name, type, line, is_mutable,
                     is_static, is_const});
    } else {
      info_.namespace_vars.push_back(
          NamespaceVar{name, type, line, is_const, is_static});
    }
  }

  /// The principal type identifier of a declaration whose declared name sits
  /// at `name_idx`: walk back over ref/pointer punctuation and one template
  /// argument list to the type's last identifier ("vector" in
  /// `std::vector<Entry> entries_`).
  [[nodiscard]] std::string principal_type_before(std::size_t name_idx,
                                                  std::size_t begin) const {
    std::size_t j = name_idx;
    while (j > begin) {
      --j;
      const Token& t = ts_[j];
      if (is_punct(t, "&") || is_punct(t, "*") || is_punct(t, "&&")) continue;
      if (is_punct(t, ">") || is_punct(t, ">>")) {
        int depth = 0;
        while (true) {
          if (is_punct(ts_[j], ">")) ++depth;
          else if (is_punct(ts_[j], ">>")) depth += 2;
          else if (is_punct(ts_[j], "<")) --depth;
          if (depth <= 0 || j == begin) break;
          --j;
        }
        continue;
      }
      if (t.kind == TokKind::kIdentifier) {
        if (is_const_marker(t) || is_id(t, "volatile")) continue;
        return t.text;
      }
      break;
    }
    return {};
  }

  const std::vector<Token>& ts_;
  std::vector<Scope> stack_;
  ScopeInfo info_;
};

}  // namespace

ScopeInfo extract_scopes(const SourceFile& f) { return ScopeWalker(f).run(); }

}  // namespace rtdb::lint
