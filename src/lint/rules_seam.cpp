#include "lint/rules.hpp"
#include "lint/rules_util.hpp"

/// \file rules_seam.cpp
/// The protocol seam: every cross-site message crosses Network::send (the
/// typed, direction-checked front door) and is judged by net::FaultHook.
/// The chaos gates and the message tables are only sound if nothing slips
/// around that seam, so the raw internals and the hook wiring points are
/// pinned here.

namespace rtdb::lint {
namespace {

using detail::is_id;

class NetSeamRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override { return "net-seam"; }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "message delivery bypassing the Network::send / net::FaultHook "
           "seam (raw send internals, hook wiring outside core::System)";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (!f.under("src") || f.under("src/net")) return;
    const bool wiring_site = f.rel_path() == "src/core/system.cpp" ||
                             f.rel_path() == "src/core/system.hpp";
    const bool fault_layer = f.under("src/fault");
    for (const Token& t : f.tokens()) {
      if (t.kind != TokKind::kIdentifier) continue;
      if (t.text == "send_raw" || t.text == "send_batch_raw") {
        add(f, t.line,
            "'" + t.text + "' bypasses the typed Network::send front door — "
            "messages must go through send<K>() so direction checks, "
            "counters and fault injection all see them",
            out);
      } else if ((t.text == "set_fault_hook" || t.text == "set_send_hook") &&
                 !wiring_site) {
        add(f, t.line,
            "'" + t.text + "' outside core::System — network hooks are "
            "wired exactly once so chaos and telemetry observe every send",
            out);
      } else if (t.text == "FaultVerdict" && !fault_layer) {
        add(f, t.line,
            "FaultVerdict fabricated outside the net/fault seam — fault "
            "decisions belong to net::FaultHook implementations",
            out);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_net_seam_rule() {
  return std::make_unique<NetSeamRule>();
}

}  // namespace rtdb::lint
