#include "lint/call_graph.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string_view>

#include "lint/rules_util.hpp"

namespace rtdb::lint {
namespace {

using detail::is_id;
using detail::is_punct;
using detail::match_angle;
using detail::npos;

/// Basenames (no directory, no extension) of the PR 8 hot-path files whose
/// RTDB_PERF_TIMER regions must stay allocation-free.
constexpr std::string_view kHotBasenames[] = {
    "event_queue", "network", "global_lock_table", "forward_list",
    "wait_for_graph"};

/// Unresolved callee names assumed to allocate (growth ops of the standard
/// containers, the factory functions, std::function, std::to_string and the
/// std::string producers). A call resolving to a *project* definition of the
/// same name — e.g. common::FlatMap::insert — uses that definition's
/// computed capability instead.
constexpr std::string_view kAllocCatalog[] = {
    "push_back", "emplace_back", "push_front", "emplace_front", "insert",
    "emplace",   "insert_or_assign", "try_emplace", "resize", "reserve",
    "append",    "assign", "push", "make_unique", "make_shared",
    "to_string", "substr", "str", "function"};

/// Keywords/control constructs that look like `name (` but are not calls.
constexpr std::string_view kNotACall[] = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "throw", "co_return", "co_await", "co_yield", "and", "or", "not",
    "defined", "alignas", "decltype", "static_assert"};

/// Allocating types whose by-value construction with an initializer is a
/// direct allocation source (`std::string s = name();`).
constexpr std::string_view kAllocTypes[] = {
    "string", "vector", "deque", "map", "set", "multimap", "multiset",
    "unordered_map", "unordered_set", "function", "stringstream",
    "ostringstream"};

template <std::size_t N>
bool contains(const std::string_view (&arr)[N], std::string_view s) {
  return std::find(std::begin(arr), std::end(arr), s) != std::end(arr);
}

/// The written `Class::`/`ns::` qualification ending just before token `at`,
/// whether the chain is reached through `.`/`->`, and — for member access —
/// the receiver identifier ("sim_" in `sim_.at(...)`, "this" for `this->`).
void written_qualifier(const std::vector<Token>& ts, std::size_t at,
                       std::string& written_class, bool& member_access,
                       std::string& receiver) {
  written_class.clear();
  receiver.clear();
  member_access = false;
  if (at >= 2 && is_punct(ts[at - 1], "::")) {
    std::size_t j = at - 2;
    if (is_punct(ts[j], ">")) {  // Class<T>::name — walk back over the args
      int depth = 0;
      while (true) {
        if (is_punct(ts[j], ">")) ++depth;
        else if (is_punct(ts[j], ">>")) depth += 2;
        else if (is_punct(ts[j], "<")) --depth;
        if (depth <= 0 || j == 0) break;
        --j;
      }
      if (j == 0) return;
      --j;
    }
    if (ts[j].kind == TokKind::kIdentifier) {
      written_class = ts[j].text;
      if (j >= 1 && (is_punct(ts[j - 1], ".") || is_punct(ts[j - 1], "->"))) {
        member_access = true;
      }
    }
    return;
  }
  if (at >= 1 && (is_punct(ts[at - 1], ".") || is_punct(ts[at - 1], "->"))) {
    member_access = true;
    if (at >= 2 && ts[at - 2].kind == TokKind::kIdentifier) {
      receiver = ts[at - 2].text;
    }
  }
}

}  // namespace

bool is_hot_path_file(std::string_view rel_path) {
  if (rel_path.substr(0, 4) != "src/") return false;
  std::string_view base = rel_path;
  if (const auto slash = base.rfind('/'); slash != std::string_view::npos) {
    base = base.substr(slash + 1);
  }
  if (const auto dot = base.rfind('.'); dot != std::string_view::npos) {
    base = base.substr(0, dot);
  }
  for (std::string_view h : kHotBasenames) {
    if (base == h) return true;
  }
  return false;
}

CallGraph CallGraph::build(const Corpus& corpus) {
  CallGraph g;

  // Pass 1: every function definition in the corpus becomes a node.
  struct FileScopes {
    const SourceFile* file;
    ScopeInfo scopes;
  };
  std::vector<FileScopes> per_file;
  for (const SourceFile& f : corpus.files()) {
    per_file.push_back({&f, extract_scopes(f)});
    for (const FunctionDef& d : per_file.back().scopes.functions) {
      CgFunction fn;
      fn.file = f.rel_path();
      fn.qualified_name = d.qualified_name;
      fn.name = d.name;
      fn.class_name = d.class_name;
      fn.line = d.line;
      g.fns_.push_back(std::move(fn));
    }
  }

  // Name indexes for resolution.
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_name;
  for (std::size_t i = 0; i < g.fns_.size(); ++i) {
    by_name[g.fns_[i].name].push_back(i);
  }

  // Receiver typing: variable/member name -> declared principal types,
  // corpus-wide (a .cpp's member calls type against its header's decls).
  // Collisions union conservatively.
  std::map<std::string, std::set<std::string>, std::less<>> recv_types;
  for (const FileScopes& fs : per_file) {
    for (const MemberDecl& m : fs.scopes.members) {
      if (!m.type.empty()) recv_types[m.name].insert(m.type);
    }
    for (const NamespaceVar& v : fs.scopes.namespace_vars) {
      if (!v.type.empty()) recv_types[v.name].insert(v.type);
    }
  }

  // Pass 2: body scans — perf-timer regions, direct allocation sources and
  // call sites, resolved against the name indexes.
  std::size_t node = 0;
  for (const FileScopes& fs : per_file) {
    const std::vector<Token>& ts = fs.file->tokens();
    for (const FunctionDef& d : fs.scopes.functions) {
      CgFunction& fn = g.fns_[node++];
      const std::size_t end = std::min(d.body_end, ts.size());
      for (std::size_t j = d.body_begin; j < end; ++j) {
        const Token& t = ts[j];
        if (is_id(t, "RTDB_PERF_TIMER")) fn.has_perf_timer = true;

        // Direct source: raw new (operator-new declarations have no body
        // here; `new` in a function body is an allocation).
        if (is_id(t, "new") && !fn.direct_alloc) {
          fn.direct_alloc = true;
          fn.direct_alloc_what = "raw `new`";
          fn.direct_alloc_line = t.line;
        }

        // Direct source: string-literal concatenation.
        if (is_punct(t, "+") && !fn.direct_alloc &&
            ((j > d.body_begin && ts[j - 1].kind == TokKind::kString) ||
             (j + 1 < end && ts[j + 1].kind == TokKind::kString))) {
          fn.direct_alloc = true;
          fn.direct_alloc_what = "string concatenation with `+`";
          fn.direct_alloc_line = t.line;
        }

        // Direct source: by-value construction of an allocating type with
        // an initializer (`std::string s = ...`, `std::vector<T> v{...}`).
        if (t.kind == TokKind::kIdentifier && contains(kAllocTypes, t.text) &&
            !fn.direct_alloc) {
          std::size_t k = j + 1;
          if (k < end && is_punct(ts[k], "<")) {
            const std::size_t c = match_angle(ts, k);
            if (c == npos || c + 1 >= end) continue;
            k = c + 1;
          }
          if (k + 1 < end && ts[k].kind == TokKind::kIdentifier &&
              !contains(kNotACall, ts[k].text) &&
              (is_punct(ts[k + 1], "=") || is_punct(ts[k + 1], "{") ||
               is_punct(ts[k + 1], "("))) {
            fn.direct_alloc = true;
            fn.direct_alloc_what =
                "by-value " + t.text + " construction of `" + ts[k].text + "`";
            fn.direct_alloc_line = t.line;
          }
        }

        // Call sites: `name (` and the template form `name<...>(`.
        if (t.kind != TokKind::kIdentifier || contains(kNotACall, t.text)) {
          continue;
        }
        std::size_t open = npos;
        if (j + 1 < end && is_punct(ts[j + 1], "(")) {
          open = j + 1;
        } else if (j + 1 < end && is_punct(ts[j + 1], "<")) {
          const std::size_t c = match_angle(ts, j + 1);
          if (c != npos && c + 1 < end && is_punct(ts[c + 1], "(")) open = c + 1;
        }
        if (open == npos) continue;

        CallSite site;
        site.name = t.text;
        site.line = t.line;
        std::string receiver;
        written_qualifier(ts, j, site.written_class, site.member_access,
                          receiver);

        const auto it = by_name.find(site.name);
        const std::vector<std::size_t> no_cands;
        const std::vector<std::size_t>& cands =
            it == by_name.end() ? no_cands : it->second;
        if (!site.written_class.empty()) {
          // Explicit `Class::name` / `ns::name`: class or qualified-suffix
          // match only.
          const std::string tail = site.written_class + "::" + site.name;
          for (std::size_t cand : cands) {
            const CgFunction& callee = g.fns_[cand];
            const bool class_match = callee.class_name == site.written_class;
            const bool suffix_match =
                callee.qualified_name.size() >= tail.size() &&
                callee.qualified_name.compare(
                    callee.qualified_name.size() - tail.size(), tail.size(),
                    tail) == 0;
            if (class_match || suffix_match) site.resolved.push_back(cand);
          }
        } else if (site.member_access) {
          // `obj.name(...)`: type the receiver via the corpus-wide
          // declaration map. A std-container receiver types to no project
          // class and falls through to the catalog — which is exactly the
          // conservative answer for container growth ops.
          const std::set<std::string>* types = nullptr;
          std::set<std::string> self_type;
          if (receiver == "this" && !fn.class_name.empty()) {
            self_type.insert(fn.class_name);
            types = &self_type;
          } else if (const auto rt = recv_types.find(receiver);
                     rt != recv_types.end()) {
            types = &rt->second;
          }
          if (types != nullptr) {
            for (std::size_t cand : cands) {
              if (types->count(g.fns_[cand].class_name) != 0) {
                site.resolved.push_back(cand);
              }
            }
          } else {
            // Untypable receiver (chained call, local, parameter): resolve
            // only when the name is unambiguous project-wide — all
            // definitions in one class — else fall to the catalog.
            std::set<std::string> classes;
            for (std::size_t cand : cands) {
              classes.insert(g.fns_[cand].class_name);
            }
            if (classes.size() == 1) {
              site.resolved = cands;
            }
          }
        } else {
          // Unqualified `name(...)`: prefer the caller's own class (a
          // this-call), else every project definition of the name.
          if (!fn.class_name.empty()) {
            for (std::size_t cand : cands) {
              if (g.fns_[cand].class_name == fn.class_name) {
                site.resolved.push_back(cand);
              }
            }
          }
          if (site.resolved.empty()) site.resolved = cands;
        }
        if (site.resolved.empty() && contains(kAllocCatalog, site.name)) {
          site.catalog_alloc = true;
        }
        fn.calls.push_back(std::move(site));
      }

      fn.hot_root = fn.has_perf_timer && is_hot_path_file(fn.file);

      // Fold catalog hits into the node's direct capability so propagation
      // only has to look at resolved edges.
      if (!fn.direct_alloc) {
        for (const CallSite& c : fn.calls) {
          if (c.catalog_alloc) {
            fn.direct_alloc = true;
            fn.direct_alloc_is_catalog = true;
            fn.direct_alloc_what =
                "call to `" + (c.member_access ? "." + c.name : c.name) +
                "(...)` (allocation catalog)";
            fn.direct_alloc_line = c.line;
            break;
          }
        }
      }
    }
  }

  // Pass 3: fixpoint — a function is allocation-capable when it has a
  // direct source or any resolved callee is capable. Iterate in index order
  // until stable (graph is small; determinism over speed).
  for (std::size_t i = 0; i < g.fns_.size(); ++i) {
    g.fns_[i].alloc_capable = g.fns_[i].direct_alloc;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (CgFunction& fn : g.fns_) {
      if (fn.alloc_capable) continue;
      for (const CallSite& c : fn.calls) {
        for (std::size_t callee : c.resolved) {
          if (callee < g.fns_.size() && g.fns_[callee].alloc_capable) {
            fn.alloc_capable = true;
            fn.alloc_via = callee;
            fn.alloc_via_line = c.line;
            changed = true;
            break;
          }
        }
        if (fn.alloc_capable) break;
      }
    }
  }
  return g;
}

std::vector<std::size_t> CallGraph::functions_in(
    std::string_view rel_path) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    if (fns_[i].file == rel_path) out.push_back(i);
  }
  return out;
}

std::string CallGraph::alloc_path(std::size_t fn) const {
  if (fn >= fns_.size() || !fns_[fn].alloc_capable) return {};
  std::string path;
  std::set<std::size_t> visited;
  std::size_t cur = fn;
  while (visited.insert(cur).second) {
    const CgFunction& f = fns_[cur];
    if (!path.empty()) path += " -> ";
    path += f.qualified_name.empty() ? f.name : f.qualified_name;
    if (f.direct_alloc) {
      path += " [" + f.file + ":" + std::to_string(f.direct_alloc_line) +
              ": " + f.direct_alloc_what + "]";
      return path;
    }
    if (f.alloc_via >= fns_.size()) break;
    cur = f.alloc_via;
  }
  return path;
}

namespace {
void json_escape(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

std::string CallGraph::to_json() const {
  std::string j;
  j += "{\n  \"schema\": 1,\n  \"functions\": [\n";
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    const CgFunction& f = fns_[i];
    j += "    {\"id\": " + std::to_string(i) + ", \"name\": \"";
    json_escape(f.qualified_name, j);
    j += "\", \"file\": \"";
    json_escape(f.file, j);
    j += "\", \"line\": " + std::to_string(f.line);
    j += std::string(", \"hot_root\": ") + (f.hot_root ? "true" : "false");
    j += std::string(", \"alloc_capable\": ") +
         (f.alloc_capable ? "true" : "false");
    if (f.direct_alloc) {
      j += ", \"direct_alloc\": \"";
      json_escape(f.direct_alloc_what, j);
      j += "\", \"direct_alloc_line\": " + std::to_string(f.direct_alloc_line);
    }
    j += ", \"calls\": [";
    bool first = true;
    for (const CallSite& c : f.calls) {
      if (!first) j += ", ";
      first = false;
      j += "{\"name\": \"";
      json_escape(c.name, j);
      j += "\", \"line\": " + std::to_string(c.line);
      if (!c.resolved.empty()) {
        j += ", \"resolved\": [";
        for (std::size_t r = 0; r < c.resolved.size(); ++r) {
          if (r) j += ", ";
          j += std::to_string(c.resolved[r]);
        }
        j += "]";
      }
      if (c.catalog_alloc) j += ", \"catalog_alloc\": true";
      j += "}";
    }
    j += "]}";
    j += i + 1 < fns_.size() ? ",\n" : "\n";
  }
  j += "  ]\n}\n";
  return j;
}

}  // namespace rtdb::lint
