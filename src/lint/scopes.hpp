#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/source_file.hpp"

/// \file scopes.hpp
/// The semantic layer's first floor: a per-file scope/function extractor
/// built on the lexer's token stream. It recovers exactly the structure the
/// semantic rules need — namespaces, class bodies, function definitions
/// with their body token ranges, class data members, and namespace-scope
/// variable definitions — without becoming a C++ parser.
///
/// Documented envelope (docs/static_analysis.md):
///  * macro-generated functions are invisible (no preprocessing);
///  * function *declarations* are not recorded, only definitions;
///  * K&R-grade obfuscation (function-try-blocks, `auto f() -> type` with
///    a body-shaped trailing return) may be skipped, never misattributed —
///    the extractor prefers a miss over a wrong body range.

namespace rtdb::lint {

/// One function (or member function) definition found in a file.
struct FunctionDef {
  /// Scope-qualified name without template arguments:
  /// "rtdb::sim::EventQueue::schedule". Out-of-line member definitions are
  /// qualified by the written class path, so the .cpp definition and an
  /// inline header definition of the same member agree.
  std::string qualified_name;
  std::string name;        ///< last component ("schedule")
  std::string class_name;  ///< enclosing/written class ("EventQueue"), or ""
  int line = 0;            ///< line of the declarator name

  /// Token-index range of the body: [body_begin, body_end) brackets the
  /// tokens between (not including) the braces.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// One class data member declaration (function members are FunctionDefs).
struct MemberDecl {
  std::string class_name;
  std::string name;
  /// Principal type identifier of the declaration, without qualification or
  /// template arguments: "vector" for `std::vector<Entry> entries_`,
  /// "Simulator" for `sim::Simulator& sim_`. Empty when unrecoverable.
  /// The call graph uses this to type member-call receivers.
  std::string type;
  int line = 0;
  bool is_mutable = false;  ///< declared with the `mutable` keyword
  bool is_static = false;
  bool is_const = false;  ///< const/constexpr/constinit qualified
};

/// One namespace-scope (or global-scope) variable *definition*.
struct NamespaceVar {
  std::string name;
  std::string type;  ///< principal type identifier (see MemberDecl::type)
  int line = 0;
  bool is_const = false;   ///< const/constexpr/constinit qualified
  bool is_static = false;  ///< declared with the `static` keyword
};

struct ScopeInfo {
  std::vector<FunctionDef> functions;
  std::vector<MemberDecl> members;
  std::vector<NamespaceVar> namespace_vars;
};

/// Extracts the file's scope structure. Never fails; unparsable regions are
/// skipped (see the envelope above).
ScopeInfo extract_scopes(const SourceFile& f);

}  // namespace rtdb::lint
