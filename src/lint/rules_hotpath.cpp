#include "lint/call_graph.hpp"
#include "lint/rules.hpp"

/// \file rules_hotpath.cpp
/// hot-path-alloc: the static counterpart of PR 8's runtime allocation
/// census. PR 8 hand-audited the RTDB_PERF_TIMER regions in
/// event_queue/network/global_lock_table/forward_list/wait_for_graph to be
/// allocation-free in steady state; the runtime census only sees the paths
/// a given sweep exercises. This rule proves the property over the whole
/// call graph: every function containing an RTDB_PERF_TIMER in one of the
/// hot files is a *hot root*, and every allocation capability reachable
/// from it — a direct source in its body, a call into the allocation
/// catalog, or a call resolving to any project function that is
/// transitively allocation-capable — is a finding.
///
/// Conservative by construction (see call_graph.hpp): name-based resolution
/// over-approximates, and the timer is treated as scoping the whole
/// function body. Deliberate high-water growth (slab/heap/scratch vectors
/// that reach steady state and then recycle) is waived per call site with
/// an `allow(hot-path-alloc)` suppression carrying the justification.

namespace rtdb::lint {
namespace {

class HotPathAllocRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "hot-path-alloc";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "allocation capability reachable from an RTDB_PERF_TIMER region "
           "in a hot-path file (transitive, via the call graph)";
  }

  void check(const SourceFile& f, const Corpus& corpus,
             std::vector<Finding>& out) const override {
    if (!is_hot_path_file(f.rel_path())) return;
    // Rebuilt per hot file: the graph is corpus-wide but cheap (a handful
    // of hot files per scan), and rules are stateless by contract.
    const CallGraph graph = CallGraph::build(corpus);
    for (const std::size_t idx : graph.functions_in(f.rel_path())) {
      const CgFunction& fn = graph.functions()[idx];
      if (!fn.hot_root) continue;

      if (fn.direct_alloc && !fn.direct_alloc_is_catalog) {
        add(f, fn.direct_alloc_line,
            "hot region `" + fn.name + "` allocates: " + fn.direct_alloc_what,
            out);
      }
      for (const CallSite& c : fn.calls) {
        if (c.catalog_alloc) {
          add(f, c.line,
              "allocating call `" + c.name +
                  "(...)` (allocation catalog) inside the RTDB_PERF_TIMER "
                  "region of `" +
                  fn.name + "`",
              out);
          continue;
        }
        for (const std::size_t callee : c.resolved) {
          if (!graph.functions()[callee].alloc_capable) continue;
          add(f, c.line,
              "call from hot region `" + fn.name +
                  "` may allocate: " + graph.alloc_path(callee),
              out);
          break;  // one finding per call site, first capable resolution
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_hot_path_alloc_rule() {
  return std::make_unique<HotPathAllocRule>();
}

}  // namespace rtdb::lint
