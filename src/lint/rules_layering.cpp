#include <numeric>

#include "lint/include_graph.hpp"
#include "lint/rules.hpp"

/// \file rules_layering.cpp
/// Enforces the subsystem DAG (include_graph.hpp) on every real `#include`
/// edge under src/. Violations name the allowed dependency set so the fix
/// (or the deliberate table edit) is obvious from the finding alone.

namespace rtdb::lint {
namespace {

class LayeringRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override { return "layering"; }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "subsystem DAG violation — a src/ layer includes a layer it is "
           "not allowed to depend on (see src/lint/include_graph.hpp)";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (f.subsystem().empty()) return;
    IncludeGraph g;
    g.add(f);
    for (const IncludeGraph::Violation& v : g.violations()) {
      const auto& allowed = allowed_deps(v.from);
      const std::string allowed_list =
          allowed.empty()
              ? std::string("nothing")
              : std::accumulate(std::next(allowed.begin()), allowed.end(),
                                *allowed.begin(),
                                [](std::string acc, const std::string& s) {
                                  return std::move(acc) + ", " + s;
                                });
      add(f, v.line,
          "src/" + v.from + " may not include \"" + v.include + "\" — " +
              v.from + " -> " + v.to + " is not an edge of the subsystem "
              "DAG (allowed deps: " + allowed_list + ")",
          out);
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_layering_rule() {
  return std::make_unique<LayeringRule>();
}

}  // namespace rtdb::lint
