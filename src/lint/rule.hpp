#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.hpp"

/// \file rule.hpp
/// The pluggable rule engine: a rule inspects one lexed SourceFile and
/// appends findings. Rules are registered in make_default_rules()
/// (rules_*.cpp); docs/static_analysis.md carries the human catalog and
/// must gain a row whenever a rule is added here.

namespace rtdb::lint {

/// Severity ordering matters only for display/JSON; the gate policy is
/// zero-finding: every non-suppressed, non-baselined finding fails the run
/// regardless of severity (see docs/static_analysis.md).
enum class Severity { kWarn, kError };

[[nodiscard]] constexpr std::string_view to_string(Severity s) {
  return s == Severity::kError ? "error" : "warn";
}

struct Finding {
  std::string file;  ///< repo-relative path
  int line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
};

/// Every file in the scan, indexed by repo-relative path. Rules get the
/// whole corpus so cross-file facts work — e.g. the determinism rules look
/// up members declared in a .cpp's companion header.
class Corpus {
 public:
  void add(SourceFile f) {
    index_.emplace(f.rel_path(), files_.size());
    files_.push_back(std::move(f));
  }
  [[nodiscard]] const SourceFile* find(std::string_view rel_path) const {
    const auto it = index_.find(rel_path);
    return it == index_.end() ? nullptr : &files_[it->second];
  }
  [[nodiscard]] const std::vector<SourceFile>& files() const { return files_; }

 private:
  std::vector<SourceFile> files_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

class Rule {
 public:
  virtual ~Rule() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual Severity severity() const = 0;
  /// One-line description for --list-rules and the docs.
  [[nodiscard]] virtual std::string_view summary() const = 0;

  /// Appends raw findings for `f` (suppressions/baseline applied later by
  /// the engine). Implementations must scope themselves via f.rel_path() —
  /// the engine feeds every scanned file to every rule. `corpus` holds all
  /// scanned files for cross-file lookups.
  virtual void check(const SourceFile& f, const Corpus& corpus,
                     std::vector<Finding>& out) const = 0;

 protected:
  void add(const SourceFile& f, int line, std::string message,
           std::vector<Finding>& out) const {
    out.push_back(
        Finding{f.rel_path(), line, std::string(name()), severity(),
                std::move(message)});
  }
};

/// The shipped rule set, in catalog order.
std::vector<std::unique_ptr<Rule>> make_default_rules();

}  // namespace rtdb::lint
