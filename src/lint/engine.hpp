#pragma once

#include <string>
#include <vector>

#include "lint/rule.hpp"

/// \file engine.hpp
/// Drives the analyzer end to end: discover files, lex, run every rule,
/// apply inline suppressions and the checked-in baseline, and render the
/// results as human text and machine JSON. tools/rtdb_lint.cpp is a thin
/// argv shell around this; tests call it directly on fixture trees.

namespace rtdb::lint {

struct LintOptions {
  /// Repo root all scan paths and reported paths are relative to.
  std::string root = ".";

  /// Files or directories (relative to root). Empty -> {"src", "tools",
  /// "bench"}, the first-party surface the rules are scoped to.
  std::vector<std::string> paths;

  /// Baseline file path (relative to cwd or absolute); empty = none.
  std::string baseline_path;

  /// When set, stale baseline entries (dead debt) fail the gate instead of
  /// only being reported.
  bool check_stale_baseline = false;

  /// When non-empty, the cross-TU call graph (call_graph.hpp) is written
  /// here as JSON after the scan.
  std::string callgraph_path;
};

struct LintReport {
  std::vector<Finding> active;      ///< fail the gate
  std::vector<Finding> suppressed;  ///< waived by inline annotations
  std::vector<Finding> baselined;   ///< grandfathered by the baseline file
  std::vector<std::string> errors;  ///< IO/baseline-parse problems
  std::vector<std::string> stale_baseline;  ///< dead-debt ledger entries
  bool fail_on_stale = false;  ///< from LintOptions.check_stale_baseline
  int files_scanned = 0;
};

/// Runs the default rule catalog. Never throws; problems land in errors.
LintReport run_lint(const LintOptions& opts);

/// `path:line: severity[rule] message` lines plus a summary tail.
std::string render_text(const LintReport& report, bool verbose);

/// One JSON object: scan stats plus every finding with its status
/// ("active" | "suppressed" | "baselined").
std::string render_json(const LintReport& report);

/// 0 = clean, 1 = active findings, 2 = engine errors (unreadable input,
/// malformed baseline).
int exit_code(const LintReport& report);

}  // namespace rtdb::lint
