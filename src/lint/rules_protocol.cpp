#include <algorithm>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "lint/rules_util.hpp"

/// \file rules_protocol.cpp
/// Protocol-totality rules for the typed message layer (PR 3). The
/// MessageKind enum is the protocol's spine: the direction table, the
/// to_string coverage and every per-kind dispatch switch must stay total as
/// kinds are added — especially once the sharded topology multiplies the
/// protocol surface. Two rules:
///
///  * protocol-totality — every `switch` whose case labels name
///    net::MessageKind must enumerate kinds explicitly: a `default:` label
///    is a finding (it swallows future kinds instead of failing
///    compilation), and any kind missing from the switch is a finding
///    (kKindCount itself is optional — it is the sentinel).
///  * protocol-dispatch — every kind in the enum must have at least one
///    typed `send<MessageKind::kX>(...)` site somewhere in the scan; a kind
///    nobody can send is dead protocol surface (or a forgotten handler).
///    Skipped when the scan contains no send<> sites at all (partial
///    scans of a single subsystem are not dispatch-complete by design).
///
/// Both rules locate the enum by path (a file ending in "net/message.hpp"),
/// so fixture corpora can carry their own miniature protocol.

namespace rtdb::lint {
namespace {

using detail::is_id;
using detail::is_punct;
using detail::match_paren;
using detail::npos;

struct EnumKind {
  std::string name;
  int line = 0;
};

/// Finds `enum class MessageKind { ... }` in `f`; returns the enumerators.
std::vector<EnumKind> parse_message_kinds(const SourceFile& f) {
  std::vector<EnumKind> kinds;
  const auto& ts = f.tokens();
  for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
    if (!is_id(ts[i], "enum") || !is_id(ts[i + 1], "class") ||
        !is_id(ts[i + 2], "MessageKind")) {
      continue;
    }
    std::size_t j = i + 3;
    while (j < ts.size() && !is_punct(ts[j], "{") && !is_punct(ts[j], ";")) {
      ++j;  // skip the underlying-type clause
    }
    if (j >= ts.size() || !is_punct(ts[j], "{")) return kinds;
    const std::size_t close = match_paren(ts, j, "{", "}");
    if (close == npos) return kinds;
    // Enumerators: an identifier at list position (start or after a comma).
    bool at_item = true;
    for (std::size_t k = j + 1; k < close; ++k) {
      if (at_item && ts[k].kind == TokKind::kIdentifier) {
        kinds.push_back({ts[k].text, ts[k].line});
        at_item = false;
      }
      if (is_punct(ts[k], ",")) at_item = true;
    }
    return kinds;
  }
  return kinds;
}

/// The corpus file defining the MessageKind enum (path ends in
/// "net/message.hpp"), or nullptr.
const SourceFile* find_protocol_header(const Corpus& corpus) {
  for (const SourceFile& f : corpus.files()) {
    const std::string& p = f.rel_path();
    constexpr std::string_view kTail = "net/message.hpp";
    if (p.size() >= kTail.size() &&
        p.compare(p.size() - kTail.size(), kTail.size(), kTail) == 0) {
      return &f;
    }
  }
  return nullptr;
}

class ProtocolTotalityRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "protocol-totality";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "switch over net::MessageKind with a default: label or with "
           "kinds missing — future kinds must fail compilation, not fall "
           "through";
  }

  void check(const SourceFile& f, const Corpus& corpus,
             std::vector<Finding>& out) const override {
    if (!f.under("src") && !f.under("tools") && !f.under("bench")) return;
    const auto& ts = f.tokens();

    std::vector<EnumKind> all_kinds;
    if (const SourceFile* hdr = find_protocol_header(corpus)) {
      all_kinds = parse_message_kinds(*hdr);
    }

    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (!is_id(ts[i], "switch")) continue;
      std::size_t j = i + 1;
      if (j >= ts.size() || !is_punct(ts[j], "(")) continue;
      const std::size_t cond_close = match_paren(ts, j, "(", ")");
      if (cond_close == npos) continue;
      std::size_t body_open = cond_close + 1;
      if (body_open >= ts.size() || !is_punct(ts[body_open], "{")) continue;
      const std::size_t body_close = match_paren(ts, body_open, "{", "}");
      if (body_close == npos) continue;

      // Collect this switch's own labels, skipping nested switch bodies.
      bool mentions_kind = false;
      bool has_default = false;
      int default_line = 0;
      std::vector<std::string> cases;
      for (std::size_t k = body_open + 1; k < body_close; ++k) {
        if (is_id(ts[k], "switch")) {
          std::size_t n = k + 1;
          while (n < body_close && !is_punct(ts[n], "{")) ++n;
          const std::size_t nested_close = match_paren(ts, n, "{", "}");
          if (nested_close == npos) break;
          k = nested_close;
          continue;
        }
        if (is_id(ts[k], "default") && k + 1 < body_close &&
            is_punct(ts[k + 1], ":")) {
          has_default = true;
          default_line = ts[k].line;
          continue;
        }
        if (!is_id(ts[k], "case")) continue;
        // Label tokens up to the single `:` (the `::` punct is distinct,
        // so qualified enumerators scan cleanly).
        std::string last_ident;
        std::size_t n = k + 1;
        for (; n < body_close && !is_punct(ts[n], ":"); ++n) {
          if (is_id(ts[n], "MessageKind")) mentions_kind = true;
          if (ts[n].kind == TokKind::kIdentifier) last_ident = ts[n].text;
        }
        if (!last_ident.empty()) cases.push_back(std::move(last_ident));
        k = n;
      }
      if (!mentions_kind) continue;

      if (has_default) {
        add(f, default_line,
            "switch over net::MessageKind has a `default:` — it swallows "
            "future kinds silently; enumerate every kind so additions fail "
            "compilation here",
            out);
      }
      for (const EnumKind& kind : all_kinds) {
        if (kind.name == "kKindCount") continue;  // sentinel is optional
        if (std::find(cases.begin(), cases.end(), kind.name) != cases.end()) {
          continue;
        }
        // A defaulted switch already fails above; missing kinds without a
        // default would not even compile under -Wswitch, but macros or
        // non-enum conditions can hide that — report regardless.
        add(f, ts[i].line,
            "switch over net::MessageKind does not handle " + kind.name,
            out);
      }
    }
  }
};

class ProtocolDispatchRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "protocol-dispatch";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "MessageKind with no typed send<MessageKind::kX>() dispatch site "
           "anywhere in the scan — dead or unroutable protocol surface";
  }

  void check(const SourceFile& f, const Corpus& corpus,
             std::vector<Finding>& out) const override {
    // Anchored to the protocol header so the findings appear on the enum.
    if (find_protocol_header(corpus) != &f) return;
    const std::vector<EnumKind> kinds = parse_message_kinds(f);
    if (kinds.empty()) return;

    // Every `send < ... MessageKind :: kX ... > (` site in the corpus.
    // send_batch<> routes through the same typed/direction-checked seam
    // (Network::send_batch -> send_batch_raw), so it dispatches too.
    std::vector<std::string> dispatched;
    bool any_send = false;
    for (const SourceFile& file : corpus.files()) {
      const auto& ts = file.tokens();
      for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (!(is_id(ts[i], "send") || is_id(ts[i], "send_batch")) ||
            !is_punct(ts[i + 1], "<")) {
          continue;
        }
        const std::size_t close = detail::match_angle(ts, i + 1);
        if (close == npos) continue;
        any_send = true;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (is_id(ts[k], "MessageKind") && k + 2 < close &&
              is_punct(ts[k + 1], "::")) {
            dispatched.push_back(ts[k + 2].text);
          }
        }
      }
    }
    // Partial scans (a single subsystem) see no dispatch sites; only a
    // corpus that sends at all is expected to be dispatch-complete.
    if (!any_send) return;

    for (const EnumKind& kind : kinds) {
      if (kind.name == "kKindCount") continue;
      if (std::find(dispatched.begin(), dispatched.end(), kind.name) !=
          dispatched.end()) {
        continue;
      }
      add(f, kind.line,
          "MessageKind::" + kind.name +
              " has no typed dispatch site (Network::send<MessageKind::" +
              kind.name + ">) anywhere in the scan",
          out);
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_protocol_totality_rule() {
  return std::make_unique<ProtocolTotalityRule>();
}

std::unique_ptr<Rule> make_protocol_dispatch_rule() {
  return std::make_unique<ProtocolDispatchRule>();
}

}  // namespace rtdb::lint
