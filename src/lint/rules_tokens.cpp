#include "lint/rules.hpp"
#include "lint/rules_util.hpp"

/// \file rules_tokens.cpp
/// Token-correct ports of the grep lints that used to live in
/// scripts/check.sh. Working on tokens (not text) means a banned name inside
/// a comment, string literal or raw string can no longer produce a false
/// positive — and no sed pipeline can mangle a URL on the way.

namespace rtdb::lint {
namespace {

using detail::is_id;
using detail::is_punct;

class RawNewDeleteRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "raw-new-delete";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "raw new/delete expressions banned in src/ and tools/ — every "
           "heap object is owned by a unique_ptr or a container";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (!f.under("src") && !f.under("tools")) return;
    const auto& ts = f.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const bool after_operator = i > 0 && is_id(ts[i - 1], "operator");
      if (after_operator) continue;  // operator new/delete declarations
      if (is_id(ts[i], "new")) {
        if (i + 1 < ts.size() && ts[i + 1].kind == TokKind::kIdentifier) {
          add(f, ts[i].line, "raw new banned — use std::make_unique or a "
                             "container",
              out);
        }
      } else if (is_id(ts[i], "delete")) {
        if (i > 0 && is_punct(ts[i - 1], "=")) continue;  // = delete
        std::size_t j = i + 1;
        if (j + 1 < ts.size() && is_punct(ts[j], "[") &&
            is_punct(ts[j + 1], "]")) {
          j += 2;  // delete[] p
        }
        if (j < ts.size() && (ts[j].kind == TokKind::kIdentifier ||
                              is_id(ts[j], "this"))) {
          add(f, ts[i].line, "raw delete banned — ownership belongs to "
                             "unique_ptr / containers",
              out);
        }
      }
    }
  }
};

class NondetRngRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override { return "nondet-rng"; }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "non-deterministic RNG (rand, random_device, default-seeded "
           "engines) banned — seed rtdb::sim::Rng from config";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (!f.under("src") && !f.under("tools") && !f.under("bench")) return;
    const auto& ts = f.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokKind::kIdentifier) continue;
      const std::string& id = ts[i].text;
      const bool member = i > 0 && (is_punct(ts[i - 1], ".") ||
                                    is_punct(ts[i - 1], "->"));
      if (id == "random_device" || id == "mt19937" || id == "mt19937_64" ||
          id == "default_random_engine" || id == "minstd_rand" ||
          id == "minstd_rand0") {
        add(f, ts[i].line,
            "non-deterministic/default-seeded RNG '" + id +
                "' — runs must replay bit-identically from the config seed",
            out);
      } else if ((id == "rand" || id == "srand") && !member &&
                 i + 1 < ts.size() && is_punct(ts[i + 1], "(")) {
        add(f, ts[i].line,
            "C '" + id + "()' banned — seed rtdb::sim::Rng from config", out);
      }
    }
  }
};

class WallClockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override { return "wall-clock"; }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "wall-clock reads banned in src/ — simulated time "
           "(sim::Simulator::now) is the only clock";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (!f.under("src")) return;
    const auto& ts = f.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokKind::kIdentifier) continue;
      const std::string& id = ts[i].text;
      if (id == "system_clock" || id == "steady_clock" ||
          id == "high_resolution_clock" || id == "gettimeofday" ||
          id == "clock_gettime") {
        add(f, ts[i].line,
            "wall-clock source '" + id + "' — use sim::Simulator::now()",
            out);
        continue;
      }
      if ((id == "time" || id == "clock") && i + 1 < ts.size() &&
          is_punct(ts[i + 1], "(")) {
        const bool member = i > 0 && (is_punct(ts[i - 1], ".") ||
                                      is_punct(ts[i - 1], "->"));
        if (member) continue;
        // `time(NULL)` / `time(nullptr)` / `time(0)` / `clock()` — the C
        // entry points; an argument list with anything else is a local
        // function with a coincidental name.
        const Token& arg = ts[i + 2 < ts.size() ? i + 2 : i + 1];
        const bool c_call = is_punct(arg, ")") || is_id(arg, "NULL") ||
                            is_id(arg, "nullptr") ||
                            (arg.kind == TokKind::kNumber && arg.text == "0");
        if (c_call) {
          add(f, ts[i].line,
              "C '" + id + "()' wall-clock call — use sim::Simulator::now()",
              out);
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_raw_new_delete_rule() {
  return std::make_unique<RawNewDeleteRule>();
}
std::unique_ptr<Rule> make_nondet_rng_rule() {
  return std::make_unique<NondetRngRule>();
}
std::unique_ptr<Rule> make_wall_clock_rule() {
  return std::make_unique<WallClockRule>();
}

}  // namespace rtdb::lint
