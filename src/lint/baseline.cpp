#include "lint/baseline.hpp"

#include <map>
#include <sstream>
#include <utility>

namespace rtdb::lint {

std::vector<BaselineEntry> parse_baseline(std::string_view text,
                                          std::vector<std::string>& errors) {
  std::vector<BaselineEntry> out;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    BaselineEntry e;
    if (!(fields >> e.rule >> e.file >> e.count) || e.count <= 0) {
      errors.push_back("baseline line " + std::to_string(lineno) +
                       ": expected '<rule> <file> <count>', got: " + line);
      continue;
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<std::string> apply_baseline(
    const std::vector<BaselineEntry>& baseline, std::vector<Finding>& findings,
    std::vector<Finding>& baselined) {
  std::vector<std::string> stale;
  if (baseline.empty()) return stale;
  std::map<std::pair<std::string, std::string>, int> budget;
  for (const BaselineEntry& e : baseline) {
    budget[{e.rule, e.file}] += e.count;
  }
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    const auto it = budget.find({f.rule, f.file});
    if (it != budget.end() && it->second > 0) {
      --it->second;
      baselined.push_back(std::move(f));
    } else {
      kept.push_back(std::move(f));
    }
  }
  findings = std::move(kept);
  // Leftover budget = stale debt (the map iterates sorted, so the report
  // order is deterministic).
  for (const auto& [key, remaining] : budget) {
    if (remaining <= 0) continue;
    const int granted = [&] {
      int n = 0;
      for (const BaselineEntry& e : baseline) {
        if (e.rule == key.first && e.file == key.second) n += e.count;
      }
      return n;
    }();
    stale.push_back("stale baseline entry: " + key.first + " " + key.second +
                    " grandfathers " + std::to_string(granted) +
                    " finding(s) but only " +
                    std::to_string(granted - remaining) +
                    " matched — prune it");
  }
  return stale;
}

std::string format_baseline(const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : findings) ++counts[{f.rule, f.file}];
  std::string out =
      "# rtdb_lint baseline — grandfathered findings (see "
      "docs/static_analysis.md).\n"
      "# <rule> <file> <count>; the gate fails on anything beyond these "
      "counts.\n";
  for (const auto& [key, n] : counts) {
    out += key.first + " " + key.second + " " + std::to_string(n) + "\n";
  }
  return out;
}

}  // namespace rtdb::lint
