#pragma once

#include <string_view>

#include "lint/token.hpp"

/// \file lexer.hpp
/// Comment/string-aware C++ tokenizer.
///
/// Guarantees the lint rules rely on:
///  * text inside //, /* */ comments never appears as a code token;
///  * string literals (with any encoding prefix, including raw strings
///    R"delim(...)delim") and char literals become single literal tokens —
///    a URL containing "//" or a banned name inside a string cannot confuse
///    a rule;
///  * backslash-newline line splices are handled everywhere except inside
///    raw strings (matching the standard's phase-2 rules), and physical
///    line numbers are tracked through them;
///  * a '#' that starts a logical line swallows the whole directive into one
///    kDirective token (so `#include` targets can be read back verbatim).
///
/// Known, documented simplifications: macro *bodies* inside directives are
/// not re-tokenized (a banned call hidden in a #define escapes token rules),
/// and no preprocessing/expansion happens. Both are acceptable for a lint
/// gate layered under clang-tidy and code review.

namespace rtdb::lint {

/// Tokenizes `src`. Never fails: unrecognized bytes become 1-char puncts.
LexResult lex(std::string_view src);

}  // namespace rtdb::lint
