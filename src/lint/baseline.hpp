#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/rule.hpp"

/// \file baseline.hpp
/// The checked-in debt ledger (scripts/lint_baseline.txt). Format — one
/// entry per line, `#` comments and blank lines ignored:
///
///     <rule> <repo-relative-file> <count>
///
/// An entry grandfathers up to `count` findings of `rule` in `file`
/// (matched in line order); anything beyond the count fails the gate, so
/// the debt can only shrink. Counts (not line numbers) keep the file stable
/// across unrelated edits.

namespace rtdb::lint {

struct BaselineEntry {
  std::string rule;
  std::string file;
  int count = 0;
};

/// Parses baseline text; malformed lines are reported into `errors`
/// (1-based line numbers) and skipped.
std::vector<BaselineEntry> parse_baseline(std::string_view text,
                                          std::vector<std::string>& errors);

/// Splits `findings` (pre-sorted by file/line) into surviving findings
/// (returned in `findings`) and grandfathered ones (appended to
/// `baselined`). Returns one description per *stale* (rule, file) budget —
/// entries whose count exceeds the findings actually matched: dead debt
/// that reads as live and must be pruned (`--check-stale-baseline` turns
/// these into gate failures).
std::vector<std::string> apply_baseline(
    const std::vector<BaselineEntry>& baseline, std::vector<Finding>& findings,
    std::vector<Finding>& baselined);

/// Renders `findings` as baseline text (for --write-baseline).
std::string format_baseline(const std::vector<Finding>& findings);

}  // namespace rtdb::lint
