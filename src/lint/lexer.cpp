#include "lint/lexer.hpp"

#include <cctype>
#include <cstddef>

namespace rtdb::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Byte cursor with logical-character access that transparently skips
/// backslash-newline splices (standard translation phase 2) while keeping
/// the physical line counter honest. Raw access (no splice handling) exists
/// for raw string literals, where splices are not spliced.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  [[nodiscard]] bool eof() const { return spliced_pos(pos_) >= s_.size(); }

  /// Logical lookahead `k` characters ahead, '\0' past the end.
  [[nodiscard]] char peek(std::size_t k = 0) const {
    std::size_t p = spliced_pos(pos_);
    while (k > 0 && p < s_.size()) {
      p = spliced_pos(p + 1);
      --k;
    }
    return p < s_.size() ? s_[p] : '\0';
  }

  /// Consumes one logical character.
  char get() {
    // Count the line breaks of any splices we jump over.
    std::size_t p = pos_;
    while (is_splice(p)) {
      ++line_;
      p += splice_len(p);
    }
    pos_ = p;
    if (pos_ >= s_.size()) return '\0';
    const char c = s_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  /// Raw (splice-blind) accessors for raw string literals.
  [[nodiscard]] char raw_peek(std::size_t k = 0) const {
    return pos_ + k < s_.size() ? s_[pos_ + k] : '\0';
  }
  char raw_get() {
    if (pos_ >= s_.size()) return '\0';
    const char c = s_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  [[nodiscard]] int line() const { return line_; }

 private:
  [[nodiscard]] bool is_splice(std::size_t p) const {
    if (p + 1 >= s_.size() || s_[p] != '\\') return false;
    if (s_[p + 1] == '\n') return true;
    return s_[p + 1] == '\r' && p + 2 < s_.size() && s_[p + 2] == '\n';
  }
  [[nodiscard]] std::size_t splice_len(std::size_t p) const {
    return s_[p + 1] == '\n' ? 2 : 3;
  }
  /// First non-splice position at or after `p`.
  [[nodiscard]] std::size_t spliced_pos(std::size_t p) const {
    while (is_splice(p)) p += splice_len(p);
    return p;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

constexpr const char* kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
constexpr const char* kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                   "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                   "%=", "&=", "|=", "^=", "++", "--", ".*",
                                   "##"};

bool is_raw_prefix(std::string_view id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}
bool is_str_prefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  Cursor cur(src);
  // Line of the last emitted code token's *end*; comments/directives check
  // it to decide whether code precedes them on their starting line.
  int last_code_line = 0;

  auto emit = [&](TokKind kind, std::string text, int line) {
    out.tokens.push_back(Token{kind, std::move(text), line});
    last_code_line = cur.line();
  };

  auto lex_quoted = [&](char quote) {
    // Opening quote already inspected, not consumed.
    const int start = cur.line();
    cur.get();
    std::string body;
    while (!cur.eof()) {
      const char c = cur.get();
      if (c == '\\') {
        body += c;
        if (!cur.eof()) body += cur.get();
        continue;
      }
      if (c == quote || c == '\n') break;  // '\n': unterminated, recover
      body += c;
    }
    emit(quote == '"' ? TokKind::kString : TokKind::kCharLit, std::move(body),
         start);
  };

  auto lex_raw_string = [&] {
    // At the '"' of R"delim( ... )delim". No splice handling inside.
    const int start = cur.line();
    cur.raw_get();  // "
    std::string delim;
    while (!cur.eof() && cur.raw_peek() != '(' && cur.raw_peek() != '\n') {
      delim += cur.raw_get();
    }
    if (cur.raw_peek() == '(') cur.raw_get();
    const std::string close = ")" + delim + "\"";
    std::string body;
    while (!cur.eof()) {
      bool match = true;
      for (std::size_t k = 0; k < close.size(); ++k) {
        if (cur.raw_peek(k) != close[k]) {
          match = false;
          break;
        }
      }
      if (match) {
        for (std::size_t k = 0; k < close.size(); ++k) cur.raw_get();
        break;
      }
      body += cur.raw_get();
    }
    emit(TokKind::kString, std::move(body), start);
  };

  while (!cur.eof()) {
    const char c = cur.peek();

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      cur.get();
      continue;
    }

    // ---- comments (kept aside; never become code tokens) ----
    if (c == '/' && cur.peek(1) == '/') {
      const int start = cur.line();
      const bool own = start != last_code_line;
      cur.get();
      cur.get();
      std::string text;
      while (!cur.eof() && cur.peek() != '\n') text += cur.get();
      out.comments.push_back(Comment{std::move(text), start, cur.line(), own});
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      const int start = cur.line();
      const bool own = start != last_code_line;
      cur.get();
      cur.get();
      std::string text;
      while (!cur.eof() && !(cur.peek() == '*' && cur.peek(1) == '/')) {
        text += cur.get();
      }
      const int end = cur.line();
      if (!cur.eof()) {
        cur.get();
        cur.get();
      }
      out.comments.push_back(Comment{std::move(text), start, end, own});
      continue;
    }

    // ---- preprocessor directive: swallow the whole logical line ----
    if ((c == '#' || (c == '%' && cur.peek(1) == ':')) &&
        cur.line() != last_code_line) {
      const int start = cur.line();
      std::string text;
      while (!cur.eof() && cur.peek() != '\n') text += cur.get();
      emit(TokKind::kDirective, std::move(text), start);
      continue;
    }

    if (c == '"') {
      lex_quoted('"');
      continue;
    }
    if (c == '\'') {
      lex_quoted('\'');
      continue;
    }

    if (ident_start(c)) {
      const int start = cur.line();
      std::string id;
      while (!cur.eof() && ident_char(cur.peek())) id += cur.get();
      if (is_raw_prefix(id) && cur.peek() == '"') {
        lex_raw_string();
        continue;
      }
      if (is_str_prefix(id) && (cur.peek() == '"' || cur.peek() == '\'')) {
        lex_quoted(cur.peek());
        continue;
      }
      emit(TokKind::kIdentifier, std::move(id), start);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      const int start = cur.line();
      std::string num;
      num += cur.get();
      while (!cur.eof()) {
        const char n = cur.peek();
        if (ident_char(n) || n == '.' || n == '\'') {
          num += cur.get();
          // pp-number: a sign directly after an exponent char sticks.
          const char last = num.back();
          if ((last == 'e' || last == 'E' || last == 'p' || last == 'P') &&
              (cur.peek() == '+' || cur.peek() == '-')) {
            num += cur.get();
          }
          continue;
        }
        break;
      }
      emit(TokKind::kNumber, std::move(num), start);
      continue;
    }

    // ---- digraphs, translated to their primary spellings ----
    // ([lex.digraph]; checked before maximal munch so `<%` does not decay
    // to a lone `<`). The one subtlety is `<::`: unless followed by `:` or
    // `>`, the `<` stands alone so `vector<::Global>` keeps its `<` `::`.
    {
      const int start = cur.line();
      auto emit_digraph = [&](std::size_t len, const char* spelled) {
        for (std::size_t k = 0; k < len; ++k) cur.get();
        emit(TokKind::kPunct, spelled, start);
      };
      if (c == '%' && cur.peek(1) == ':') {
        if (cur.peek(2) == '%' && cur.peek(3) == ':') {
          emit_digraph(4, "##");
        } else {
          emit_digraph(2, "#");
        }
        continue;
      }
      if (c == '<' && cur.peek(1) == '%') {
        emit_digraph(2, "{");
        continue;
      }
      if (c == '%' && cur.peek(1) == '>') {
        emit_digraph(2, "}");
        continue;
      }
      if (c == '<' && cur.peek(1) == ':' &&
          !(cur.peek(2) == ':' && cur.peek(3) != ':' && cur.peek(3) != '>')) {
        emit_digraph(2, "[");
        continue;
      }
      if (c == ':' && cur.peek(1) == '>') {
        emit_digraph(2, "]");
        continue;
      }
    }

    // ---- punctuation, maximal munch ----
    {
      const int start = cur.line();
      bool matched = false;
      for (const char* op : kPunct3) {
        if (cur.peek() == op[0] && cur.peek(1) == op[1] &&
            cur.peek(2) == op[2]) {
          cur.get();
          cur.get();
          cur.get();
          emit(TokKind::kPunct, op, start);
          matched = true;
          break;
        }
      }
      if (matched) continue;
      for (const char* op : kPunct2) {
        if (cur.peek() == op[0] && cur.peek(1) == op[1]) {
          cur.get();
          cur.get();
          emit(TokKind::kPunct, op, start);
          matched = true;
          break;
        }
      }
      if (matched) continue;
      emit(TokKind::kPunct, std::string(1, cur.get()), start);
    }
  }
  return out;
}

}  // namespace rtdb::lint
