#include "lint/rules.hpp"
#include "lint/rules_util.hpp"

/// \file rules_concurrency.cpp
/// Concurrency-readiness pre-flags. The simulator is single-threaded today;
/// the multi-server roadmap ends that. Mutable static state is the thing
/// that silently breaks first when a second thread (or a second System in
/// one process) appears, so every non-const static is surfaced *now* —
/// each one must become const, move into its owning object, or carry an
/// explicit justification before the refactor starts.

namespace rtdb::lint {
namespace {

using detail::is_id;
using detail::is_punct;

bool is_const_marker(const Token& t) {
  return is_id(t, "const") || is_id(t, "constexpr") || is_id(t, "constinit");
}

class MutableStaticRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "mutable-static";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "non-const static/global state in src/ — hidden shared state "
           "that breaks once multiple servers/threads exist";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (!f.under("src")) return;
    const auto& ts = f.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (!is_id(ts[i], "static")) continue;
      // `const static` / `constexpr static` — qualifier may precede.
      bool const_qualified = false;
      for (std::size_t b = i; b > 0 && b + 3 > i; --b) {
        if (is_const_marker(ts[b - 1])) const_qualified = true;
        else if (!is_id(ts[b - 1], "inline")) break;
      }
      // Scan the declaration head: stop at the declarator's end or at an
      // argument list (a function — stateless, fine).
      bool function_like = false;
      for (std::size_t j = i + 1; j < ts.size() && j < i + 40; ++j) {
        const Token& t = ts[j];
        if (is_const_marker(t)) {
          const_qualified = true;
          continue;
        }
        if (is_punct(t, "(")) {
          function_like = true;
          break;
        }
        if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, "{")) break;
        if (j + 1 == ts.size() || j + 1 == i + 40) function_like = true;
      }
      if (const_qualified || function_like) continue;
      add(f, ts[i].line,
          "non-const static — shared mutable state; make it "
          "const/constexpr, move it into the owning object, or annotate "
          "with a justification for the multi-server refactor to audit",
          out);
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_mutable_static_rule() {
  return std::make_unique<MutableStaticRule>();
}

}  // namespace rtdb::lint
