#include "lint/rules.hpp"
#include "lint/rules_util.hpp"
#include "lint/scopes.hpp"

/// \file rules_concurrency.cpp
/// Concurrency-readiness rules. The simulator is single-threaded today; the
/// sharded multi-server roadmap ends that. Two rules guard the transition:
///
///  * mutable-static — scope-aware (via the scopes.hpp extractor): non-const
///    namespace-scope state (static or not), non-const static data members,
///    and function-local mutable statics. Each one must become const, move
///    into its owning object, or carry a justification.
///  * shared-state — `mutable` members of classes in the lock/net/core
///    subsystems must declare their discipline with a `shared(<discipline>)`
///    annotation after the `rtdb-lint` marker (grammar in source_file.hpp);
///    the sharding PR will check the declared disciplines against real
///    thread boundaries. Malformed annotations are findings wherever they
///    appear.

namespace rtdb::lint {
namespace {

using detail::is_id;
using detail::is_punct;

bool is_const_marker(const Token& t) {
  return is_id(t, "const") || is_id(t, "constexpr") || is_id(t, "constinit");
}

bool in_lint_scope(const SourceFile& f) {
  return f.under("src") || f.under("tools") || f.under("bench");
}

class MutableStaticRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "mutable-static";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "non-const namespace-scope/static state — hidden shared state "
           "that breaks once multiple servers/threads exist";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (!in_lint_scope(f)) return;
    const ScopeInfo scopes = extract_scopes(f);

    for (const NamespaceVar& v : scopes.namespace_vars) {
      if (v.is_const) continue;
      add(f, v.line,
          "non-const namespace-scope state `" + v.name +
              "` — shared mutable state; make it const/constexpr, move it "
              "into the owning object, or annotate with a justification "
              "for the multi-server refactor to audit",
          out);
    }

    for (const MemberDecl& m : scopes.members) {
      if (!m.is_static || m.is_const) continue;
      add(f, m.line,
          "non-const static data member `" + m.class_name + "::" + m.name +
              "` — one instance shared by every object and every future "
              "server; make it const or per-instance",
          out);
    }

    // Function-local mutable statics: a `static` inside a recorded body
    // whose declaration head carries no const qualifier.
    const auto& ts = f.tokens();
    for (const FunctionDef& fn : scopes.functions) {
      const std::size_t end = std::min(fn.body_end, ts.size());
      for (std::size_t i = fn.body_begin; i < end; ++i) {
        if (!is_id(ts[i], "static")) continue;
        bool const_qualified = false;
        for (std::size_t j = i + 1; j < end && j < i + 40; ++j) {
          const Token& t = ts[j];
          if (is_const_marker(t)) {
            const_qualified = true;
            break;
          }
          if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, "{") ||
              is_punct(t, "(")) {
            break;
          }
        }
        if (const_qualified) continue;
        add(f, ts[i].line,
            "function-local mutable static in `" + fn.name +
                "` — per-process state that aliases across servers/threads; "
                "hoist it into the owning object or make it const",
            out);
      }
    }
  }
};

class SharedStateRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "shared-state";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "mutable member in a lock/net/core class without a "
           "rtdb-lint: shared(<discipline>) annotation";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (!in_lint_scope(f)) return;

    // Grammar hygiene applies everywhere an annotation appears.
    for (const SharedAnnotation& a : f.shared_annotations()) {
      if (!a.malformed) continue;
      add(f, a.first_line,
          "malformed shared(...) annotation — syntax is `// rtdb-lint: "
          "shared(<discipline>) <note>` with discipline one of "
          "single-thread, guarded-by:<name>, atomic, read-only, "
          "partitioned, and the note is mandatory",
          out);
    }

    const std::string& sub = f.subsystem();
    if (sub != "lock" && sub != "net" && sub != "core") return;
    const ScopeInfo scopes = extract_scopes(f);
    for (const MemberDecl& m : scopes.members) {
      if (!m.is_mutable || f.shared_annotated(m.line)) continue;
      add(f, m.line,
          "mutable member `" + m.class_name + "::" + m.name +
              "` in the " + sub +
              " subsystem without a shared(<discipline>) annotation — "
              "declare how it stays safe before the sharding refactor "
              "(see docs/static_analysis.md)",
          out);
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_mutable_static_rule() {
  return std::make_unique<MutableStaticRule>();
}

std::unique_ptr<Rule> make_shared_state_rule() {
  return std::make_unique<SharedStateRule>();
}

}  // namespace rtdb::lint
