#include "lint/include_graph.hpp"

namespace rtdb::lint {
namespace {

/// The subsystem DAG. Keep in sync with src/*/CMakeLists.txt link edges and
/// the diagram in docs/static_analysis.md.
const std::map<std::string, std::set<std::string>>& dag() {
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"common", {}},
      {"sim", {"common"}},
      {"net", {"common", "sim"}},
      {"fault", {"common", "net", "sim"}},
      {"obs", {"common", "net", "sim"}},
      {"storage", {"common", "sim"}},
      {"lock", {"common", "sim"}},
      {"txn", {"common", "lock", "sim"}},
      {"workload", {"common", "sim", "txn"}},
      {"core",
       {"common", "sim", "net", "fault", "obs", "storage", "lock", "txn",
        "workload"}},
      {"lint", {}},
  };
  return kDag;
}

const std::set<std::string>& empty_set() {
  static const std::set<std::string> kEmpty;
  return kEmpty;
}

}  // namespace

bool is_subsystem(std::string_view name) {
  return dag().count(std::string(name)) > 0;
}

const std::set<std::string>& allowed_deps(std::string_view from) {
  const auto it = dag().find(std::string(from));
  return it == dag().end() ? empty_set() : it->second;
}

bool layer_allowed(std::string_view from, std::string_view to) {
  if (from == to) return true;
  return allowed_deps(from).count(std::string(to)) > 0;
}

void IncludeGraph::add(const SourceFile& f) {
  const std::string& from = f.subsystem();
  if (from.empty()) return;
  for (const Include& inc : f.includes()) {
    if (inc.angled) continue;  // system/third-party headers carry no layer
    const auto slash = inc.path.find('/');
    if (slash == std::string::npos) continue;
    const std::string to = inc.path.substr(0, slash);
    if (!is_subsystem(to)) continue;
    deps_[from].insert(to);
    if (!layer_allowed(from, to)) {
      violations_.push_back(
          Violation{f.rel_path(), inc.line, from, to, inc.path});
    }
  }
}

}  // namespace rtdb::lint
