#pragma once

#include <string>
#include <vector>

/// \file token.hpp
/// Token model for the rtdb_lint C++ tokenizer (see lexer.hpp).
///
/// The lexer is deliberately not a compiler front end: it produces exactly
/// the granularity the lint rules need — identifiers, literals, punctuation
/// and whole preprocessor directives — while being *correct* about the two
/// things grep-based lints get wrong: comments and string literals. A banned
/// identifier inside a comment, a string (including raw strings) or a char
/// literal is never tokenized as code.

namespace rtdb::lint {

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords (no keyword table needed)
  kNumber,      ///< numeric literal incl. separators/suffixes/exponents
  kString,      ///< string literal body (prefix + quotes stripped)
  kCharLit,     ///< character literal body (quotes stripped)
  kPunct,       ///< operator/punctuator, maximal munch ("::", "->", "+=", …)
  kDirective,   ///< one whole preprocessor line ("#include \"x\"", spliced)
};

struct Token {
  TokKind kind;
  std::string text;  ///< normalized spelling (directives: splices collapsed)
  int line;          ///< 1-based physical line where the token starts
};

/// A comment, kept out of the token stream but retained for suppression
/// parsing (syntax in source_file.hpp).
struct Comment {
  std::string text;  ///< body without the // or /* */ markers
  int line;          ///< 1-based line where the comment starts
  int end_line;      ///< last line the comment spans (== line for //)
  bool own_line;     ///< no code precedes the comment on its starting line
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

}  // namespace rtdb::lint
