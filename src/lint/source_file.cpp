#include "lint/source_file.hpp"

#include <algorithm>
#include <cctype>

#include "lint/lexer.hpp"

namespace rtdb::lint {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses "#include <x>" / "#include \"x\"" out of a directive's text.
bool parse_include(std::string_view directive, Include& out) {
  std::string_view s = trim(directive);
  if (s.empty() || s.front() != '#') return false;
  s = trim(s.substr(1));
  if (s.substr(0, 7) != "include") return false;
  s = trim(s.substr(7));
  if (s.empty()) return false;
  const char open = s.front();
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return false;  // computed include — out of scope
  const auto end = s.find(close, 1);
  if (end == std::string_view::npos) return false;
  out.path = std::string(s.substr(1, end - 1));
  out.angled = open == '<';
  return true;
}

constexpr std::string_view kMarker = "rtdb-lint:";

/// The shared(...) discipline heads the concurrency rules accept (the
/// guarded-by form carries a `:name` tail).
bool known_discipline(std::string_view d) {
  return d == "single-thread" || d == "atomic" || d == "read-only" ||
         d == "partitioned" || d.substr(0, 11) == "guarded-by:";
}

/// Parses the marker + "shared(<discipline>) note" from a comment body.
/// Call only after the marker was found and the verb is "shared".
void parse_shared(std::string_view s, const Comment& c,
                  SharedAnnotation& out) {
  out.first_line = c.line;
  out.last_line = c.end_line;  // own-line comments get extended by caller
  out.malformed = true;        // until fully parsed
  s = trim(s.substr(6));       // past "shared"
  if (s.empty() || s.front() != '(') return;
  const auto close = s.find(')');
  if (close == std::string_view::npos) return;
  out.discipline = std::string(trim(s.substr(1, close - 1)));
  out.note = std::string(trim(s.substr(close + 1)));
  out.malformed = out.discipline.empty() || out.note.empty() ||
                  !known_discipline(out.discipline);
}

/// Parses the marker + "allow(rule-a, rule-b) why" from a comment body.
/// Returns false when the comment does not carry the marker at all.
bool parse_suppression(const Comment& c, Suppression& out) {
  std::string_view s = trim(c.text);
  const auto at = s.find(kMarker);
  if (at == std::string_view::npos) return false;
  out.first_line = c.line;
  out.last_line = c.end_line;  // own-line comments get extended by caller
  out.malformed = true;  // until fully parsed
  s = trim(s.substr(at + kMarker.size()));
  if (s.substr(0, 5) != "allow") return true;
  s = trim(s.substr(5));
  if (s.empty() || s.front() != '(') return true;
  const auto close = s.find(')');
  if (close == std::string_view::npos) return true;
  std::string_view list = s.substr(1, close - 1);
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string_view item = trim(list.substr(0, comma));
    if (!item.empty()) out.rules.emplace_back(item);
    if (comma == std::string_view::npos) break;
    list = list.substr(comma + 1);
  }
  out.justification = std::string(trim(s.substr(close + 1)));
  out.malformed = out.rules.empty() || out.justification.empty();
  return true;
}

}  // namespace

SourceFile SourceFile::from_string(std::string rel_path,
                                   std::string_view content) {
  SourceFile f;
  f.rel_path_ = std::move(rel_path);
  std::replace(f.rel_path_.begin(), f.rel_path_.end(), '\\', '/');
  if (f.rel_path_.rfind("./", 0) == 0) f.rel_path_.erase(0, 2);

  if (f.rel_path_.rfind("src/", 0) == 0) {
    const auto rest = std::string_view(f.rel_path_).substr(4);
    const auto slash = rest.find('/');
    if (slash != std::string_view::npos) {
      f.subsystem_ = std::string(rest.substr(0, slash));
    }
  }

  LexResult lexed = lex(content);
  f.tokens_ = std::move(lexed.tokens);
  f.comments_ = std::move(lexed.comments);

  for (const Token& t : f.tokens_) {
    if (t.kind != TokKind::kDirective) continue;
    Include inc;
    inc.line = t.line;
    if (parse_include(t.text, inc)) f.includes_.push_back(inc);
  }
  // A standalone annotation comment covers the next *code* line — which may
  // sit below continuation comment lines, since each `//` line lexes as its
  // own comment.
  const auto own_line_end = [&f](const Comment& c) {
    int next_code = c.end_line + 1;
    for (const Token& t : f.tokens_) {
      if (t.line > c.end_line) {
        next_code = t.line;
        break;
      }
    }
    return next_code;
  };
  for (const Comment& c : f.comments_) {
    // The verb after the marker decides the annotation type: `shared(...)`
    // declares a concurrency discipline, everything else parses as an
    // allow-suppression (and is malformed when it isn't one).
    const std::string_view body = trim(c.text);
    const auto at = body.find(kMarker);
    if (at == std::string_view::npos) continue;
    const std::string_view after = trim(body.substr(at + kMarker.size()));
    if (after.substr(0, 6) == "shared") {
      SharedAnnotation a;
      parse_shared(after, c, a);
      if (c.own_line) a.last_line = own_line_end(c);
      f.shared_annotations_.push_back(std::move(a));
      continue;
    }
    Suppression s;
    if (!parse_suppression(c, s)) continue;
    if (c.own_line) s.last_line = own_line_end(c);
    f.suppressions_.push_back(std::move(s));
  }
  return f;
}

bool SourceFile::suppressed(std::string_view rule, int line) const {
  for (const Suppression& s : suppressions_) {
    if (s.malformed || line < s.first_line || line > s.last_line) continue;
    for (const std::string& r : s.rules) {
      if (r == rule) return true;
    }
  }
  return false;
}

bool SourceFile::shared_annotated(int line) const {
  for (const SharedAnnotation& a : shared_annotations_) {
    if (!a.malformed && line >= a.first_line && line <= a.last_line) {
      return true;
    }
  }
  return false;
}

bool SourceFile::under(std::string_view dir) const {
  if (rel_path_.size() <= dir.size()) return false;
  return std::string_view(rel_path_).substr(0, dir.size()) == dir &&
         rel_path_[dir.size()] == '/';
}

std::string SourceFile::basename() const {
  const auto slash = rel_path_.rfind('/');
  return slash == std::string::npos ? rel_path_ : rel_path_.substr(slash + 1);
}

}  // namespace rtdb::lint
