#include <string>

#include "lint/rules.hpp"
#include "lint/rules_util.hpp"

/// \file rules_determinism.cpp
/// Determinism rules the grep approach could never express: they need to
/// know what is an unordered container, what is a range-for, and which
/// files feed the replay digests. The replay property these protect:
/// tools/rtdb_verify re-runs a seed and demands bit-identical digests, and
/// unordered-container iteration order is the classic way to lose that
/// (and the first thing that changes under a different standard library).

namespace rtdb::lint {
namespace {

using detail::is_id;
using detail::is_punct;
using detail::npos;

/// Files whose output feeds replay digests, metrics JSON, trace export or
/// the invariant audits: everything under src/obs plus the files whose name
/// marks them as digest/export/audit code, wherever they live.
bool digest_context(const SourceFile& f) {
  if (f.under("src/obs")) return true;
  const std::string base = f.basename();
  for (const char* marker :
       {"digest", "export", "telemetry", "trace", "metrics", "auditor",
        "verify", "stats"}) {
    if (base.find(marker) != std::string::npos) return true;
  }
  return false;
}

/// Unordered-container names visible to `f`: declared in the file itself or
/// in its companion header (x.cpp -> x.hpp/x.h), where members usually live.
std::set<std::string> visible_unordered_vars(const SourceFile& f,
                                             const Corpus& corpus) {
  std::set<std::string> vars = detail::collect_unordered_vars(f);
  const std::string& p = f.rel_path();
  for (const char* src_ext : {".cpp", ".cc"}) {
    const std::size_t n = std::string(src_ext).size();
    if (p.size() <= n || p.substr(p.size() - n) != src_ext) continue;
    for (const char* hdr_ext : {".hpp", ".h"}) {
      const SourceFile* hdr = corpus.find(p.substr(0, p.size() - n) + hdr_ext);
      if (!hdr) continue;
      const auto more = detail::collect_unordered_vars(*hdr);
      vars.insert(more.begin(), more.end());
    }
  }
  return vars;
}

class UnorderedIterRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "unordered-iter";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "iterating an unordered container on a digest/export/audit path "
           "— sort first, or annotate order-insensitive with a reason";
  }

  void check(const SourceFile& f, const Corpus& corpus,
             std::vector<Finding>& out) const override {
    if ((!f.under("src") && !f.under("tools")) || !digest_context(f)) return;
    const auto vars = visible_unordered_vars(f, corpus);
    if (vars.empty()) return;
    const auto& ts = f.tokens();
    for (const detail::RangeFor& rf : detail::find_range_fors(ts)) {
      for (std::size_t i = rf.range_begin; i < rf.range_end; ++i) {
        if (ts[i].kind == TokKind::kIdentifier && vars.count(ts[i].text)) {
          add(f, ts[rf.kw].line,
              "range-for over unordered container '" + ts[i].text +
                  "' on a digest/export path — iteration order is not part "
                  "of the replay contract; sort into a vector first or "
                  "annotate order-insensitive",
              out);
          break;
        }
      }
    }
    // Explicit iterator walks: `var.begin()` / `var.cbegin()`.
    for (std::size_t i = 0; i + 3 < ts.size(); ++i) {
      if (ts[i].kind == TokKind::kIdentifier && vars.count(ts[i].text) &&
          is_punct(ts[i + 1], ".") &&
          (is_id(ts[i + 2], "begin") || is_id(ts[i + 2], "cbegin")) &&
          is_punct(ts[i + 3], "(")) {
        add(f, ts[i].line,
            "iterator walk over unordered container '" + ts[i].text +
                "' on a digest/export path — sort first or annotate "
                "order-insensitive",
            out);
      }
    }
  }
};

class PtrKeyRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override { return "ptr-key"; }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "container keyed on a pointer (or std::less<T*>) — ordering and "
           "hashing follow allocation addresses, which never replay";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    if (!f.under("src") && !f.under("tools")) return;
    const auto& ts = f.tokens();
    for (std::size_t i = 1; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != TokKind::kIdentifier || !is_punct(ts[i - 1], "::") ||
          !is_punct(ts[i + 1], "<")) {
        continue;
      }
      const std::string& id = ts[i].text;
      const bool keyed = id == "map" || id == "set" || id == "multimap" ||
                         id == "multiset" || id == "unordered_map" ||
                         id == "unordered_set" || id == "unordered_multimap" ||
                         id == "unordered_multiset";
      const bool cmp = id == "less" || id == "greater";
      if (!keyed && !cmp) continue;
      const std::size_t close = detail::match_angle(ts, i + 1);
      if (close == npos) continue;
      // Scan the first template argument (the key / compared type).
      int depth = 0;
      for (std::size_t j = i + 1; j <= close; ++j) {
        if (is_punct(ts[j], "<")) ++depth;
        else if (is_punct(ts[j], ">")) --depth;
        else if (is_punct(ts[j], ">>")) depth -= 2;
        else if (depth == 1 && is_punct(ts[j], ",")) break;
        else if (depth == 1 && is_punct(ts[j], "*")) {
          add(f, ts[i].line,
              "'" + id + "' keyed/ordered on a raw pointer — iteration "
              "order follows heap addresses and differs run to run; key on "
              "a strong id instead",
              out);
          break;
        }
      }
    }
  }
};

class FloatAccumRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "float-accum";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kWarn; }
  [[nodiscard]] std::string_view summary() const override {
    return "float/double += inside a loop over an unordered container — "
           "FP addition does not commute, so the sum depends on hash order";
  }

  void check(const SourceFile& f, const Corpus& corpus,
             std::vector<Finding>& out) const override {
    if (!f.under("src") && !f.under("tools")) return;
    const auto uvars = visible_unordered_vars(f, corpus);
    if (uvars.empty()) return;
    const auto fvars = detail::collect_float_vars(f);
    if (fvars.empty()) return;
    const auto& ts = f.tokens();
    for (const detail::RangeFor& rf : detail::find_range_fors(ts)) {
      bool unordered = false;
      for (std::size_t i = rf.range_begin; i < rf.range_end && !unordered;
           ++i) {
        unordered = ts[i].kind == TokKind::kIdentifier &&
                    uvars.count(ts[i].text) > 0;
      }
      if (!unordered) continue;
      for (std::size_t i = rf.body_begin;
           i + 1 < ts.size() && i < rf.body_end; ++i) {
        if (ts[i].kind == TokKind::kIdentifier && fvars.count(ts[i].text) &&
            is_punct(ts[i + 1], "+=")) {
          add(f, ts[i].line,
              "floating-point accumulation into '" + ts[i].text +
                  "' over unordered iteration order — sum into a sorted "
                  "sequence (or integers) to keep replays bit-identical",
              out);
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_unordered_iter_rule() {
  return std::make_unique<UnorderedIterRule>();
}
std::unique_ptr<Rule> make_ptr_key_rule() {
  return std::make_unique<PtrKeyRule>();
}
std::unique_ptr<Rule> make_float_accum_rule() {
  return std::make_unique<FloatAccumRule>();
}

}  // namespace rtdb::lint
