#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/token.hpp"

/// \file source_file.hpp
/// A lexed translation unit plus the per-file facts every rule consumes:
/// repo-relative path, owning subsystem, `#include` edges, and parsed
/// `rtdb-lint` suppression comments.

namespace rtdb::lint {

/// One `#include` directive.
struct Include {
  std::string path;  ///< target as written ("core/runner.hpp", "vector")
  int line;
  bool angled;  ///< <...> (system/third-party) vs "..." (first-party)
};

/// One inline suppression comment: the `rtdb-lint` marker (with a colon)
/// followed by `allow(rule-a, rule-b) justification`.
///
/// A suppression covers the lines its comment spans; a comment with no code
/// before it on its line additionally covers the next line (the annotated
/// statement). The justification is mandatory — `malformed` suppressions
/// suppress nothing and are themselves reported (rule `bad-suppression`).
struct Suppression {
  std::vector<std::string> rules;
  std::string justification;
  int first_line;  ///< first covered line
  int last_line;   ///< last covered line (inclusive)
  bool malformed;  ///< unparsable allow-list or empty justification
};

/// One `shared(<discipline>) <note>` annotation (written after the
/// `rtdb-lint` marker, like a suppression): a declaration of *how* a piece
/// of mutable shared state is kept safe, consumed by the
/// concurrency-readiness rules (and later checked against real thread
/// boundaries by the sharding work). Legal disciplines:
///
///   single-thread        touched only from the simulator thread
///   guarded-by:<name>    held under the named mutex/lock
///   atomic               std::atomic or equivalent
///   read-only            written once before sharing, never after
///   partitioned          per-shard instance, never cross-shard
///
/// The note is mandatory, like a suppression justification. Coverage rules
/// match Suppression: the comment's lines, plus the next code line for
/// own-line comments.
struct SharedAnnotation {
  std::string discipline;  ///< as written ("guarded-by:mu_")
  std::string note;
  int first_line;
  int last_line;
  bool malformed;  ///< missing discipline/note or unknown discipline head
};

class SourceFile {
 public:
  /// Lexes `content` as the file at repo-relative `rel_path` (forward
  /// slashes). Used by tests and by the disk loader in engine.cpp.
  static SourceFile from_string(std::string rel_path, std::string_view content);

  [[nodiscard]] const std::string& rel_path() const { return rel_path_; }

  /// First path component under src/ ("lock" for "src/lock/x.cpp"); empty
  /// for files outside src/.
  [[nodiscard]] const std::string& subsystem() const { return subsystem_; }

  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }
  [[nodiscard]] const std::vector<Comment>& comments() const {
    return comments_;
  }
  [[nodiscard]] const std::vector<Include>& includes() const {
    return includes_;
  }
  [[nodiscard]] const std::vector<Suppression>& suppressions() const {
    return suppressions_;
  }
  [[nodiscard]] const std::vector<SharedAnnotation>& shared_annotations()
      const {
    return shared_annotations_;
  }

  /// True when `rule` is suppressed at `line` by a well-formed suppression.
  [[nodiscard]] bool suppressed(std::string_view rule, int line) const;

  /// True when `line` is covered by a well-formed shared(...) annotation.
  [[nodiscard]] bool shared_annotated(int line) const;

  /// Path helpers used by rules to scope themselves.
  [[nodiscard]] bool under(std::string_view dir) const;  // "src", "src/net"
  [[nodiscard]] std::string basename() const;

 private:
  std::string rel_path_;
  std::string subsystem_;
  std::vector<Token> tokens_;
  std::vector<Comment> comments_;
  std::vector<Include> includes_;
  std::vector<Suppression> suppressions_;
  std::vector<SharedAnnotation> shared_annotations_;
};

}  // namespace rtdb::lint
