#include <algorithm>

#include "lint/rules.hpp"

namespace rtdb::lint {
namespace {

/// Keeps the suppression machinery honest: a suppression without a
/// justification (or naming no known rule) suppresses nothing and is itself
/// a finding — otherwise `allow` comments rot into unreviewed waivers.
class SuppressionHygieneRule final : public Rule {
 public:
  explicit SuppressionHygieneRule(std::vector<std::string> known)
      : known_(std::move(known)) {}

  [[nodiscard]] std::string_view name() const override {
    return "bad-suppression";
  }
  [[nodiscard]] Severity severity() const override { return Severity::kError; }
  [[nodiscard]] std::string_view summary() const override {
    return "malformed rtdb-lint suppression — needs allow(<known-rule>) and "
           "a non-empty justification";
  }

  void check(const SourceFile& f, const Corpus& /*corpus*/,
             std::vector<Finding>& out) const override {
    for (const Suppression& s : f.suppressions()) {
      if (s.malformed) {
        add(f, s.first_line,
            "malformed suppression — syntax is "
            "`// rtdb-lint: allow(<rule>) <justification>` and the "
            "justification is mandatory",
            out);
        continue;
      }
      for (const std::string& r : s.rules) {
        if (std::find(known_.begin(), known_.end(), r) == known_.end()) {
          add(f, s.first_line,
              "suppression names unknown rule '" + r +
                  "' — see rtdb_lint --list-rules",
              out);
        }
      }
    }
  }

 private:
  std::vector<std::string> known_;
};

}  // namespace

std::unique_ptr<Rule> make_suppression_hygiene_rule(
    std::vector<std::string> known_rules) {
  return std::make_unique<SuppressionHygieneRule>(std::move(known_rules));
}

std::vector<std::unique_ptr<Rule>> make_default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(make_raw_new_delete_rule());
  rules.push_back(make_nondet_rng_rule());
  rules.push_back(make_wall_clock_rule());
  rules.push_back(make_unordered_iter_rule());
  rules.push_back(make_ptr_key_rule());
  rules.push_back(make_float_accum_rule());
  rules.push_back(make_layering_rule());
  rules.push_back(make_mutable_static_rule());
  rules.push_back(make_shared_state_rule());
  rules.push_back(make_net_seam_rule());
  rules.push_back(make_hot_path_alloc_rule());
  rules.push_back(make_protocol_totality_rule());
  rules.push_back(make_protocol_dispatch_rule());

  std::vector<std::string> names;
  names.reserve(rules.size() + 1);
  for (const auto& r : rules) names.emplace_back(r->name());
  names.emplace_back("bad-suppression");
  rules.push_back(make_suppression_hygiene_rule(std::move(names)));
  return rules;
}

}  // namespace rtdb::lint
