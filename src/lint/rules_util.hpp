#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.hpp"
#include "lint/token.hpp"

/// \file rules_util.hpp
/// Token-stream helpers shared by the rule implementations: identifier /
/// punctuator matching, bracket matching (with C++ `>>` closing two template
/// lists), range-for extraction, and declared-variable collection for the
/// determinism rules.

namespace rtdb::lint::detail {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

inline bool is_id(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdentifier && t.text == s;
}
inline bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

/// Index of the `)`/`}`/`]` matching the opener at `open`, or npos.
inline std::size_t match_paren(const std::vector<Token>& ts, std::size_t open,
                               std::string_view o, std::string_view c) {
  int depth = 0;
  for (std::size_t i = open; i < ts.size(); ++i) {
    if (is_punct(ts[i], o)) ++depth;
    if (is_punct(ts[i], c) && --depth == 0) return i;
  }
  return npos;
}

/// Matches the template-argument list opened by `<` at `open`; returns the
/// index of the closing token (`>` or a `>>` that closes two lists), or npos
/// when the bracket does not close before `;`/`{` — i.e. when the `<` was a
/// comparison, not a template list.
inline std::size_t match_angle(const std::vector<Token>& ts,
                               std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (is_punct(t, "<")) ++depth;
    else if (is_punct(t, ">")) {
      if (--depth <= 0) return i;
    } else if (is_punct(t, ">>")) {
      depth -= 2;
      if (depth <= 0) return i;
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      return npos;
    }
  }
  return npos;
}

/// One `for (... : range)` statement.
struct RangeFor {
  std::size_t kw;          ///< index of the `for`
  std::size_t range_begin; ///< first token of the range expression
  std::size_t range_end;   ///< one past the last range token (the `)`)
  std::size_t body_begin;  ///< first token of the body
  std::size_t body_end;    ///< one past the body (matching `}` or the `;`)
};

/// Extracts all range-based for statements (including the C++20
/// init-statement form). A `:` inside a top-level conditional expression is
/// not treated as the range separator.
std::vector<RangeFor> find_range_fors(const std::vector<Token>& ts);

/// Names of variables/members declared with an unordered associative
/// container type in this file (heuristic: `unordered_xxx<...> name`).
/// Misses `using Alias = std::unordered_map<...>` indirections — see
/// docs/static_analysis.md for the documented envelope.
std::set<std::string> collect_unordered_vars(const SourceFile& f);

/// Names declared with `float`/`double` (variables, members, parameters).
std::set<std::string> collect_float_vars(const SourceFile& f);

}  // namespace rtdb::lint::detail
