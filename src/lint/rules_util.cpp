#include "lint/rules_util.hpp"

namespace rtdb::lint::detail {

std::vector<RangeFor> find_range_fors(const std::vector<Token>& ts) {
  std::vector<RangeFor> out;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_id(ts[i], "for") || !is_punct(ts[i + 1], "(")) continue;
    const std::size_t close = match_paren(ts, i + 1, "(", ")");
    if (close == npos) continue;

    // The range separator is a top-level `:` that is not the second half of
    // a `?:` conditional. With an init-statement present, the `:` after the
    // last top-level `;` is the separator.
    std::size_t colon = npos;
    int depth = 0;
    int ternary = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      const Token& t = ts[j];
      if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
      else if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) {
        --depth;
      } else if (depth == 0 && is_punct(t, "?")) {
        ++ternary;
      } else if (depth == 0 && is_punct(t, ":")) {
        if (ternary > 0) {
          --ternary;
        } else {
          colon = j;
          break;
        }
      }
    }
    if (colon == npos) continue;

    RangeFor rf;
    rf.kw = i;
    rf.range_begin = colon + 1;
    rf.range_end = close;
    if (close + 1 < ts.size() && is_punct(ts[close + 1], "{")) {
      const std::size_t end = match_paren(ts, close + 1, "{", "}");
      rf.body_begin = close + 2;
      rf.body_end = end == npos ? ts.size() : end;
    } else {
      rf.body_begin = close + 1;
      std::size_t j = rf.body_begin;
      int d = 0;
      for (; j < ts.size(); ++j) {
        if (is_punct(ts[j], "(") || is_punct(ts[j], "{")) ++d;
        else if (is_punct(ts[j], ")") || is_punct(ts[j], "}")) --d;
        else if (d == 0 && is_punct(ts[j], ";")) break;
      }
      rf.body_end = j;
    }
    out.push_back(rf);
  }
  return out;
}

namespace {

bool is_unordered_container(std::string_view id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

}  // namespace

std::set<std::string> collect_unordered_vars(const SourceFile& f) {
  const auto& ts = f.tokens();
  std::set<std::string> vars;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdentifier ||
        !is_unordered_container(ts[i].text) || !is_punct(ts[i + 1], "<")) {
      continue;
    }
    const std::size_t close = match_angle(ts, i + 1);
    if (close == npos) continue;
    // `unordered_map<K, V> name` — allow ref/pointer declarators between.
    std::size_t j = close + 1;
    while (j < ts.size() &&
           (is_punct(ts[j], "&") || is_punct(ts[j], "*") ||
            is_id(ts[j], "const"))) {
      ++j;
    }
    if (j < ts.size() && ts[j].kind == TokKind::kIdentifier) {
      vars.insert(ts[j].text);
    }
  }
  return vars;
}

std::set<std::string> collect_float_vars(const SourceFile& f) {
  const auto& ts = f.tokens();
  std::set<std::string> vars;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_id(ts[i], "float") && !is_id(ts[i], "double")) continue;
    std::size_t j = i + 1;
    while (j < ts.size() && (is_punct(ts[j], "&") || is_punct(ts[j], "*"))) {
      ++j;
    }
    if (j < ts.size() && ts[j].kind == TokKind::kIdentifier) {
      vars.insert(ts[j].text);
    }
  }
  return vars;
}

}  // namespace rtdb::lint::detail
