#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/rule.hpp"
#include "lint/scopes.hpp"

/// \file call_graph.hpp
/// The semantic layer's second floor: a cross-TU call graph over every
/// function definition the scope extractor finds in the corpus, with an
/// allocation-capability bit propagated transitively through the edges.
///
/// Resolution is *name-based and conservative*: a call written
/// `Class::name(...)` resolves to project definitions of `name` in `Class`;
/// an unqualified or member-access call resolves to every project definition
/// of that name. A call that resolves to nothing is checked against the
/// allocation catalog (container growth ops, make_unique/make_shared,
/// std::function construction, std::to_string, ...). Over-approximation is
/// the point — the hot-path-alloc rule wants "provably allocation-free",
/// so any possibly-allocating interpretation must count.
///
/// The graph is also persisted as a queryable artifact:
/// `rtdb_lint --dump-callgraph callgraph.json` (schema in
/// docs/static_analysis.md).

namespace rtdb::lint {

/// One call site inside a function body.
struct CallSite {
  std::string name;           ///< callee as written, last component ("schedule")
  std::string written_class;  ///< explicit `Class::` qualification, or ""
  int line = 0;
  bool member_access = false;  ///< written `obj.name(...)` / `ptr->name(...)`
  std::vector<std::size_t> resolved;  ///< indices of matching project defs
  bool catalog_alloc = false;  ///< unresolved and in the allocation catalog
};

/// One function definition node.
struct CgFunction {
  std::string file;  ///< repo-relative path of the defining file
  std::string qualified_name;
  std::string name;
  std::string class_name;
  int line = 0;

  bool has_perf_timer = false;  ///< body contains RTDB_PERF_TIMER(...)
  bool hot_root = false;  ///< perf-timer region in a PR 8 hot-path file

  /// Direct allocation capability of the body itself (before propagation).
  bool direct_alloc = false;
  std::string direct_alloc_what;  ///< human description of the first source
  int direct_alloc_line = 0;
  /// True when direct_alloc was folded in from a catalog call site (the
  /// hot-path rule reports those per call site instead).
  bool direct_alloc_is_catalog = false;

  std::vector<CallSite> calls;

  /// After propagation: this function may allocate, directly or via any
  /// resolvable callee chain.
  bool alloc_capable = false;
  /// Index of the callee that first made this node capable (npos when the
  /// capability is direct). Used to reconstruct one example path.
  std::size_t alloc_via = static_cast<std::size_t>(-1);
  int alloc_via_line = 0;  ///< line of that call site
};

class CallGraph {
 public:
  /// Builds the graph over every file in the corpus (scope extraction +
  /// call-site extraction + allocation fixpoint). Deterministic: nodes in
  /// corpus file order, then body order.
  static CallGraph build(const Corpus& corpus);

  [[nodiscard]] const std::vector<CgFunction>& functions() const {
    return fns_;
  }

  /// Indices of functions defined in `rel_path`, in body order.
  [[nodiscard]] std::vector<std::size_t> functions_in(
      std::string_view rel_path) const;

  /// One example call chain explaining why `fn` is allocation-capable:
  /// "a() -> b() [file:line] -> ... -> <direct source>". Empty when the
  /// function is not capable.
  [[nodiscard]] std::string alloc_path(std::size_t fn) const;

  /// The whole graph as a JSON document (schema 1, see docs).
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<CgFunction> fns_;
};

/// True when `rel_path` is one of the PR 8 hot-path files whose
/// RTDB_PERF_TIMER regions the hot-path-alloc rule guards.
[[nodiscard]] bool is_hot_path_file(std::string_view rel_path);

}  // namespace rtdb::lint
