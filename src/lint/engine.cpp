#include "lint/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/baseline.hpp"
#include "lint/call_graph.hpp"
#include "lint/rules.hpp"

namespace rtdb::lint {
namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Repo-relative path with forward slashes.
std::string rel_to(const fs::path& root, const fs::path& p) {
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

std::vector<fs::path> discover(const LintOptions& opts,
                               std::vector<std::string>& errors) {
  std::vector<fs::path> files;
  const fs::path root(opts.root);
  std::vector<std::string> paths = opts.paths;
  const bool defaulted = paths.empty();
  if (defaulted) paths = {"src", "tools", "bench"};
  for (const std::string& p : paths) {
    const fs::path full = root / p;
    std::error_code ec;
    if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
      continue;
    }
    if (!fs::is_directory(full, ec)) {
      // A default dir a small tree simply doesn't have is fine; a path the
      // caller asked for by name is not.
      if (!defaulted) {
        errors.push_back("path not found: " + full.generic_string());
      }
      continue;
    }
    for (fs::recursive_directory_iterator it(full, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        errors.push_back("walk failed under " + full.generic_string() + ": " +
                         ec.message());
        break;
      }
      const fs::path& entry = it->path();
      const std::string fname = entry.filename().string();
      if (it->is_directory() && !fname.empty() && fname.front() == '.') {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(entry)) files.push_back(entry);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_findings_json(std::string& out, const std::vector<Finding>& fs,
                          std::string_view status, bool& first) {
  for (const Finding& f : fs) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"file\": \"" + json_escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"severity\": \"" +
           std::string(to_string(f.severity)) + "\", \"status\": \"" +
           std::string(status) + "\", \"message\": \"" +
           json_escape(f.message) + "\"}";
  }
}

void sort_findings(std::vector<Finding>& v) {
  std::sort(v.begin(), v.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

}  // namespace

LintReport run_lint(const LintOptions& opts) {
  LintReport report;
  const auto rules = make_default_rules();
  const fs::path root(opts.root);

  // Pass 1: lex everything into the corpus (rules need cross-file facts,
  // e.g. members declared in a .cpp's companion header).
  Corpus corpus;
  for (const fs::path& path : discover(opts, report.errors)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report.errors.push_back("cannot read " + path.generic_string());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.add(SourceFile::from_string(rel_to(root, path), buf.str()));
    ++report.files_scanned;
  }

  // Pass 2: run every rule over every file, then split off suppressions.
  for (const SourceFile& file : corpus.files()) {
    std::vector<Finding> raw;
    for (const auto& rule : rules) rule->check(file, corpus, raw);
    for (Finding& f : raw) {
      if (file.suppressed(f.rule, f.line)) {
        report.suppressed.push_back(std::move(f));
      } else {
        report.active.push_back(std::move(f));
      }
    }
  }

  sort_findings(report.active);
  sort_findings(report.suppressed);

  if (!opts.baseline_path.empty()) {
    std::ifstream in(opts.baseline_path, std::ios::binary);
    if (!in) {
      report.errors.push_back("cannot read baseline " + opts.baseline_path);
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      const auto baseline = parse_baseline(buf.str(), report.errors);
      report.stale_baseline =
          apply_baseline(baseline, report.active, report.baselined);
    }
  }
  report.fail_on_stale = opts.check_stale_baseline;

  if (!opts.callgraph_path.empty()) {
    std::ofstream out(opts.callgraph_path, std::ios::binary);
    if (!out) {
      report.errors.push_back("cannot write callgraph " + opts.callgraph_path);
    } else {
      out << CallGraph::build(corpus).to_json();
    }
  }
  return report;
}

std::string render_text(const LintReport& report, bool verbose) {
  std::string out;
  for (const std::string& e : report.errors) {
    out += "rtdb_lint: error: " + e + "\n";
  }
  for (const std::string& s : report.stale_baseline) {
    out += std::string("rtdb_lint: ") +
           (report.fail_on_stale ? "error: " : "warning: ") + s + "\n";
  }
  for (const Finding& f : report.active) {
    out += f.file + ":" + std::to_string(f.line) + ": " +
           std::string(to_string(f.severity)) + "[" + f.rule + "] " +
           f.message + "\n";
  }
  if (verbose) {
    for (const Finding& f : report.suppressed) {
      out += f.file + ":" + std::to_string(f.line) + ": suppressed[" +
             f.rule + "]\n";
    }
    for (const Finding& f : report.baselined) {
      out += f.file + ":" + std::to_string(f.line) + ": baselined[" +
             f.rule + "]\n";
    }
  }
  out += "rtdb_lint: " + std::to_string(report.files_scanned) + " file(s), " +
         std::to_string(report.active.size()) + " finding(s) (" +
         std::to_string(report.suppressed.size()) + " suppressed, " +
         std::to_string(report.baselined.size()) + " baselined)\n";
  return out;
}

std::string render_json(const LintReport& report) {
  std::string out = "{\n  \"files_scanned\": " +
                    std::to_string(report.files_scanned) +
                    ",\n  \"active\": " + std::to_string(report.active.size()) +
                    ",\n  \"suppressed\": " +
                    std::to_string(report.suppressed.size()) +
                    ",\n  \"baselined\": " +
                    std::to_string(report.baselined.size()) +
                    ",\n  \"stale_baseline\": [";
  for (std::size_t i = 0; i < report.stale_baseline.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           json_escape(report.stale_baseline[i]) + "\"";
  }
  out += "],\n  \"findings\": [\n";
  bool first = true;
  append_findings_json(out, report.active, "active", first);
  append_findings_json(out, report.suppressed, "suppressed", first);
  append_findings_json(out, report.baselined, "baselined", first);
  out += first ? "  ]\n}\n" : "\n  ]\n}\n";
  return out;
}

int exit_code(const LintReport& report) {
  if (!report.errors.empty()) return 2;
  if (report.fail_on_stale && !report.stale_baseline.empty()) return 1;
  return report.active.empty() ? 0 : 1;
}

}  // namespace rtdb::lint
