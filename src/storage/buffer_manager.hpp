#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "sim/stats.hpp"

/// \file buffer_manager.hpp
/// LRU buffer bookkeeping — the in-memory half of the MiniRel Paged-File
/// (PF) layer the paper built its database on. The buffer decides *which*
/// entries are resident and which eviction happens; the timing of the
/// implied I/O is handled by PagedFile/ClientCache, which own the Disk.
///
/// The structure is id-generic: the server's paged file buffers `PageId`
/// frames (`BufferManager`), while the client cache tiers buffer whole
/// objects (`LruBuffer<ObjectId>`). The strong id types keep the two from
/// ever being mixed — a page can't be inserted into an object tier.

namespace rtdb::storage {

/// Tracks a set of resident entries with LRU replacement and dirty bits.
///
/// The PF layer's pin counts are modelled implicitly: in the simulation a
/// page is only accessed at a single decision instant, so transient pins
/// never span events. Dirty entries evicted by LRU are reported to the
/// caller so it can schedule the write-back (the PF buffer manager's
/// behaviour: "updated objects ... are automatically written back to the
/// disk file ... when the page is replaced").
template <class Id>
class LruBuffer {
 public:
  /// What LRU displaced to make room.
  struct Evicted {
    Id id{};
    bool dirty = false;
  };

  /// `capacity` — number of 2 KB frames the pool holds (>= 1).
  explicit LruBuffer(std::size_t capacity);

  /// True if the entry is resident. Does not affect recency or counters.
  [[nodiscard]] bool contains(Id id) const { return index_.count(id) != 0; }

  /// References an entry: records a hit (promoting it to MRU) or a miss.
  /// Returns true on hit.
  bool reference(Id id);

  /// Makes `id` resident (MRU), evicting the LRU entry if the pool is full.
  /// No-op (recency bump) if already resident. Returns the eviction, if any.
  std::optional<Evicted> insert(Id id, bool dirty = false);

  /// Marks a resident entry dirty. Returns false if not resident.
  bool mark_dirty(Id id);

  /// True if resident and dirty.
  [[nodiscard]] bool is_dirty(Id id) const;

  /// Drops an entry without write-back bookkeeping (caller decides what the
  /// removal means). Returns the entry's dirty state, or nullopt if absent.
  std::optional<bool> erase(Id id);

  [[nodiscard]] std::size_t size() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_.value(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.value(); }

  /// hits / (hits + misses); 0 when no references yet.
  [[nodiscard]] double hit_rate() const;

  void reset_stats() {
    hits_.reset();
    misses_.reset();
  }

  /// Least-recently-used resident entry (the next eviction victim), if any.
  [[nodiscard]] std::optional<Id> lru_victim() const;

  /// Resident ids in MRU-to-LRU order (diagnostics/audits).
  [[nodiscard]] std::vector<Id> resident_pages() const;

  /// Invariant audit: residency never exceeds capacity, and the id index
  /// and the LRU list describe exactly the same frames (the pin-balance
  /// analogue of the implicit-pin model — a frame can never be reachable
  /// from one structure but not the other). Aborts on violation.
  void validate_invariants() const;

 private:
  struct Frame {
    Id id;
    bool dirty;
  };
  using LruList = std::list<Frame>;

  void touch(typename LruList::iterator it);

  std::size_t capacity_;
  LruList lru_;  // front = MRU, back = LRU
  std::unordered_map<Id, typename LruList::iterator> index_;
  sim::Counter hits_;
  sim::Counter misses_;
};

extern template class LruBuffer<PageId>;
extern template class LruBuffer<ObjectId>;

/// The server-side page pool: frames are pages of the paged file.
using BufferManager = LruBuffer<PageId>;

}  // namespace rtdb::storage
