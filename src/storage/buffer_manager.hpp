#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/ids.hpp"
#include "sim/stats.hpp"

/// \file buffer_manager.hpp
/// LRU buffer bookkeeping — the in-memory half of the MiniRel Paged-File
/// (PF) layer the paper built its database on. The buffer decides *which*
/// entries are resident and which eviction happens; the timing of the
/// implied I/O is handled by PagedFile/ClientCache, which own the Disk.
///
/// The structure is id-generic: the server's paged file buffers `PageId`
/// frames (`BufferManager`), while the client cache tiers buffer whole
/// objects (`LruBuffer<ObjectId>`). The strong id types keep the two from
/// ever being mixed — a page can't be inserted into an object tier.

namespace rtdb::storage {

/// Tracks a set of resident entries with LRU replacement and dirty bits.
///
/// The PF layer's pin counts are modelled implicitly: in the simulation a
/// page is only accessed at a single decision instant, so transient pins
/// never span events. Dirty entries evicted by LRU are reported to the
/// caller so it can schedule the write-back (the PF buffer manager's
/// behaviour: "updated objects ... are automatically written back to the
/// disk file ... when the page is replaced").
template <class Id>
class LruBuffer {
 public:
  /// What LRU displaced to make room.
  struct Evicted {
    Id id{};
    bool dirty = false;
  };

  /// `capacity` — number of 2 KB frames the pool holds (>= 1).
  explicit LruBuffer(std::size_t capacity);

  /// True if the entry is resident. Does not affect recency or counters.
  [[nodiscard]] bool contains(Id id) const {
    return index_.find(id) != nullptr;
  }

  /// References an entry: records a hit (promoting it to MRU) or a miss.
  /// Returns true on hit.
  bool reference(Id id);

  /// Makes `id` resident (MRU), evicting the LRU entry if the pool is full.
  /// No-op (recency bump) if already resident. Returns the eviction, if any.
  std::optional<Evicted> insert(Id id, bool dirty = false);

  /// Marks a resident entry dirty. Returns false if not resident.
  bool mark_dirty(Id id);

  /// True if resident and dirty.
  [[nodiscard]] bool is_dirty(Id id) const;

  /// Drops an entry without write-back bookkeeping (caller decides what the
  /// removal means). Returns the entry's dirty state, or nullopt if absent.
  std::optional<bool> erase(Id id);

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_.value(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.value(); }

  /// hits / (hits + misses); 0 when no references yet.
  [[nodiscard]] double hit_rate() const;

  void reset_stats() {
    hits_.reset();
    misses_.reset();
  }

  /// Least-recently-used resident entry (the next eviction victim), if any.
  [[nodiscard]] std::optional<Id> lru_victim() const;

  /// Resident ids in MRU-to-LRU order (diagnostics/audits).
  [[nodiscard]] std::vector<Id> resident_pages() const;

  /// Invariant audit: residency never exceeds capacity, and the id index
  /// and the LRU list describe exactly the same frames (the pin-balance
  /// analogue of the implicit-pin model — a frame can never be reachable
  /// from one structure but not the other). Aborts on violation.
  void validate_invariants() const;

 private:
  /// Frames live in a recycled slab threaded into an intrusive doubly
  /// linked LRU list (head = MRU, tail = LRU); the id index is a flat
  /// open-addressing map onto slab slots. Identical recency/eviction
  /// semantics to the former std::list + unordered_map pair, with zero
  /// node allocations in steady state (the slab never exceeds `capacity`
  /// frames and free slots are reused).
  static constexpr std::uint32_t kNull = 0xffffffffu;

  struct Frame {
    Id id{};
    bool dirty = false;
    std::uint32_t prev = kNull;
    std::uint32_t next = kNull;
  };

  /// Moves a resident frame to the MRU position.
  void touch(std::uint32_t slot);
  void unlink(std::uint32_t slot);
  void link_front(std::uint32_t slot);

  std::size_t capacity_;
  std::vector<Frame> frames_;
  std::uint32_t head_ = kNull;  ///< MRU
  std::uint32_t tail_ = kNull;  ///< LRU (next eviction victim)
  std::uint32_t free_head_ = kNull;
  common::FlatMap<Id, std::uint32_t> index_;
  sim::Counter hits_;
  sim::Counter misses_;
};

extern template class LruBuffer<PageId>;
extern template class LruBuffer<ObjectId>;

/// The server-side page pool: frames are pages of the paged file.
using BufferManager = LruBuffer<PageId>;

}  // namespace rtdb::storage
