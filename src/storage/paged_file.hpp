#pragma once

#include "common/ids.hpp"
#include "sim/simulator.hpp"
#include "storage/buffer_manager.hpp"
#include "storage/disk.hpp"

/// \file paged_file.hpp
/// The server-side paged file: the timing composition of BufferManager
/// (residency/LRU) and Disk (I/O service). Reproduces the role of the
/// MiniRel PF layer in the paper's prototypes — "storage and retrieval of
/// uniquely numbered fixed-sized pages from its memory buffers and disk
/// file", with dirty pages written back on replacement.

namespace rtdb::storage {

/// Timing parameters for buffer accesses.
struct PagedFileConfig {
  /// Capacity of the memory buffer pool, in pages/objects.
  std::size_t buffer_capacity = 5000;

  /// Cost of serving a page already resident in the buffer pool.
  sim::Duration memory_access_time = sim::usec(50);

  DiskConfig disk;
};

/// An asynchronous page store: `access()` completes after the simulated
/// time the PF layer would need (buffer hit vs disk read, plus any
/// replacement write-back that delays the read by occupying the disk).
class PagedFile {
 public:
  PagedFile(sim::Simulator& sim, PagedFileConfig config)
      : sim_(sim),
        config_(config),
        disk_(sim, config.disk),
        buffer_(config.buffer_capacity) {}

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Reads (or updates, when `write`) one page; `done` runs when the page
  /// is available in memory. Buffer hit: memory_access_time. Miss: queue a
  /// disk read; a displaced dirty page also queues its write-back.
  void access(ObjectId id, bool write, sim::Simulator::Callback done);

  /// Pre-loads a page as resident and clean without any timing (used to
  /// model a warm server at the start of a run).
  void preload(ObjectId id) { buffer_.insert(page_of(id), /*dirty=*/false); }

  /// Installs a page whose contents just arrived over the network (a client
  /// returned an updated object): no read I/O, but a displaced dirty page
  /// still queues its write-back.
  void install(ObjectId id, bool dirty);

  [[nodiscard]] const BufferManager& buffer() const { return buffer_; }
  [[nodiscard]] const Disk& disk() const { return disk_; }
  Disk& disk() { return disk_; }

  void reset_stats() {
    buffer_.reset_stats();
    disk_.reset_stats();
  }

 private:
  sim::Simulator& sim_;
  PagedFileConfig config_;
  Disk disk_;
  BufferManager buffer_;
};

}  // namespace rtdb::storage
