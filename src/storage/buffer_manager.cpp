#include "storage/buffer_manager.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace rtdb::storage {

template <class Id>
void LruBuffer<Id>::validate_invariants() const {
  RTDB_CHECK(index_.size() <= capacity_,
             "%zu resident pages exceed capacity %zu", index_.size(),
             capacity_);
  index_.validate_invariants();
  // Walk MRU -> LRU: every linked frame is indexed at its slot, links are
  // mutually consistent, and the walk covers exactly the resident count.
  std::size_t walked = 0;
  std::uint32_t prev = kNull;
  for (std::uint32_t s = head_; s != kNull; s = frames_[s].next) {
    RTDB_CHECK(s < frames_.size(), "LRU list names slot %u of %zu", s,
               frames_.size());
    const Frame& f = frames_[s];
    RTDB_CHECK(f.prev == prev, "LRU back-link broken at slot %u", s);
    const std::uint32_t* idx = index_.find(f.id);
    RTDB_CHECK(idx != nullptr && *idx == s,
               "page %llu resident but mis-indexed",
               static_cast<unsigned long long>(f.id.value()));
    prev = s;
    ++walked;
    RTDB_CHECK(walked <= frames_.size(), "LRU list cycle detected");
  }
  RTDB_CHECK(prev == tail_, "LRU tail %u does not terminate the list",
             tail_);
  RTDB_CHECK(walked == index_.size(),
             "index tracks %zu pages, LRU list holds %zu", index_.size(),
             walked);
  std::size_t free_walked = 0;
  for (std::uint32_t s = free_head_; s != kNull; s = frames_[s].next) {
    RTDB_CHECK(s < frames_.size(), "free list names slot %u of %zu", s,
               frames_.size());
    ++free_walked;
    RTDB_CHECK(free_walked <= frames_.size(), "free list cycle detected");
  }
  RTDB_CHECK(walked + free_walked == frames_.size(),
             "%zu resident + %zu free != %zu slab frames", walked,
             free_walked, frames_.size());
}

template <class Id>
LruBuffer<Id>::LruBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("LruBuffer capacity must be >= 1");
  }
}

template <class Id>
void LruBuffer<Id>::unlink(std::uint32_t slot) {
  Frame& f = frames_[slot];
  if (f.prev != kNull) {
    frames_[f.prev].next = f.next;
  } else {
    head_ = f.next;
  }
  if (f.next != kNull) {
    frames_[f.next].prev = f.prev;
  } else {
    tail_ = f.prev;
  }
}

template <class Id>
void LruBuffer<Id>::link_front(std::uint32_t slot) {
  Frame& f = frames_[slot];
  f.prev = kNull;
  f.next = head_;
  if (head_ != kNull) frames_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNull) tail_ = slot;
}

template <class Id>
void LruBuffer<Id>::touch(std::uint32_t slot) {
  if (head_ == slot) return;
  unlink(slot);
  link_front(slot);
}

template <class Id>
bool LruBuffer<Id>::reference(Id id) {
  const std::uint32_t* slot = index_.find(id);
  if (slot == nullptr) {
    misses_.inc();
    return false;
  }
  hits_.inc();
  touch(*slot);
  return true;
}

template <class Id>
std::optional<typename LruBuffer<Id>::Evicted> LruBuffer<Id>::insert(
    Id id, bool dirty) {
  if (const std::uint32_t* slot = index_.find(id)) {
    touch(*slot);
    Frame& f = frames_[*slot];
    f.dirty = f.dirty || dirty;
    return std::nullopt;
  }
  std::optional<Evicted> evicted;
  if (index_.size() >= capacity_) {
    const std::uint32_t victim = tail_;
    Frame& v = frames_[victim];
    evicted = Evicted{v.id, v.dirty};
    index_.erase(v.id);
    unlink(victim);
    v.next = free_head_;
    free_head_ = victim;
  }
  std::uint32_t slot;
  if (free_head_ != kNull) {
    slot = free_head_;
    free_head_ = frames_[slot].next;
  } else {
    slot = static_cast<std::uint32_t>(frames_.size());
    frames_.emplace_back();
  }
  frames_[slot].id = id;
  frames_[slot].dirty = dirty;
  link_front(slot);
  index_.get_or_insert(id) = slot;
  return evicted;
}

template <class Id>
bool LruBuffer<Id>::mark_dirty(Id id) {
  const std::uint32_t* slot = index_.find(id);
  if (slot == nullptr) return false;
  frames_[*slot].dirty = true;
  return true;
}

template <class Id>
bool LruBuffer<Id>::is_dirty(Id id) const {
  const std::uint32_t* slot = index_.find(id);
  return slot != nullptr && frames_[*slot].dirty;
}

template <class Id>
std::optional<bool> LruBuffer<Id>::erase(Id id) {
  const std::uint32_t* slot = index_.find(id);
  if (slot == nullptr) return std::nullopt;
  const std::uint32_t s = *slot;
  const bool dirty = frames_[s].dirty;
  unlink(s);
  frames_[s].next = free_head_;
  free_head_ = s;
  index_.erase(id);
  return dirty;
}

template <class Id>
double LruBuffer<Id>::hit_rate() const {
  const auto total = hits_.value() + misses_.value();
  return total ? static_cast<double>(hits_.value()) /
                     static_cast<double>(total)
               : 0.0;
}

template <class Id>
std::optional<Id> LruBuffer<Id>::lru_victim() const {
  if (tail_ == kNull) return std::nullopt;
  return frames_[tail_].id;
}

template <class Id>
std::vector<Id> LruBuffer<Id>::resident_pages() const {
  std::vector<Id> pages;
  pages.reserve(index_.size());
  for (std::uint32_t s = head_; s != kNull; s = frames_[s].next) {
    pages.push_back(frames_[s].id);
  }
  return pages;
}

template class LruBuffer<PageId>;
template class LruBuffer<ObjectId>;

}  // namespace rtdb::storage
