#include "storage/buffer_manager.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace rtdb::storage {

template <class Id>
void LruBuffer<Id>::validate_invariants() const {
  RTDB_CHECK(lru_.size() <= capacity_, "%zu resident pages exceed capacity %zu",
             lru_.size(), capacity_);
  RTDB_CHECK(index_.size() == lru_.size(),
             "index tracks %zu pages, LRU list holds %zu", index_.size(),
             lru_.size());
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const auto idx = index_.find(it->id);
    RTDB_CHECK(idx != index_.end() && idx->second == it,
               "page %llu resident but mis-indexed",
               static_cast<unsigned long long>(it->id.value()));
  }
}

template <class Id>
LruBuffer<Id>::LruBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("LruBuffer capacity must be >= 1");
  }
}

template <class Id>
void LruBuffer<Id>::touch(typename LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

template <class Id>
bool LruBuffer<Id>::reference(Id id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    misses_.inc();
    return false;
  }
  hits_.inc();
  touch(it->second);
  return true;
}

template <class Id>
std::optional<typename LruBuffer<Id>::Evicted> LruBuffer<Id>::insert(
    Id id, bool dirty) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    touch(it->second);
    it->second->dirty = it->second->dirty || dirty;
    return std::nullopt;
  }
  std::optional<Evicted> evicted;
  if (lru_.size() >= capacity_) {
    const Frame& victim = lru_.back();
    evicted = Evicted{victim.id, victim.dirty};
    index_.erase(victim.id);
    lru_.pop_back();
  }
  lru_.push_front(Frame{id, dirty});
  index_[id] = lru_.begin();
  return evicted;
}

template <class Id>
bool LruBuffer<Id>::mark_dirty(Id id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  it->second->dirty = true;
  return true;
}

template <class Id>
bool LruBuffer<Id>::is_dirty(Id id) const {
  auto it = index_.find(id);
  return it != index_.end() && it->second->dirty;
}

template <class Id>
std::optional<bool> LruBuffer<Id>::erase(Id id) {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  const bool dirty = it->second->dirty;
  lru_.erase(it->second);
  index_.erase(it);
  return dirty;
}

template <class Id>
double LruBuffer<Id>::hit_rate() const {
  const auto total = hits_.value() + misses_.value();
  return total ? static_cast<double>(hits_.value()) /
                     static_cast<double>(total)
               : 0.0;
}

template <class Id>
std::optional<Id> LruBuffer<Id>::lru_victim() const {
  if (lru_.empty()) return std::nullopt;
  return lru_.back().id;
}

template <class Id>
std::vector<Id> LruBuffer<Id>::resident_pages() const {
  std::vector<Id> pages;
  pages.reserve(lru_.size());
  for (const Frame& f : lru_) pages.push_back(f.id);
  return pages;
}

template class LruBuffer<PageId>;
template class LruBuffer<ObjectId>;

}  // namespace rtdb::storage
