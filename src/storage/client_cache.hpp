#pragma once

#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "sim/simulator.hpp"
#include "storage/buffer_manager.hpp"
#include "storage/disk.hpp"

/// \file client_cache.hpp
/// Two-tier client object cache ("the set of objects cached at a client is
/// treated as a local dataspace and is stored in the client's short and
/// long-term memory"). Tier 1 is main memory (paper: 500 objects), tier 2
/// is the client's local disk (paper: 500 objects). LRU within each tier;
/// memory evictions demote to the disk tier; disk-tier evictions leave the
/// cache entirely and are reported through a hook so the owning client can
/// return dirty objects (and their locks) to the server.

namespace rtdb::storage {

/// Capacities and timing of the client cache.
struct ClientCacheConfig {
  std::size_t memory_capacity = 500;  ///< objects in RAM
  std::size_t disk_capacity = 500;    ///< objects on local disk
  sim::Duration memory_access_time = sim::usec(50);
  DiskConfig disk;
};

/// Where a cached object currently resides.
enum class CacheTier : std::uint8_t { kNone, kMemory, kDisk };

/// The client-side local dataspace.
class ClientCache {
 public:
  /// (object, was-dirty): the object fell out of the cache entirely.
  using EvictionHook = std::function<void(ObjectId, bool)>;

  ClientCache(sim::Simulator& sim, ClientCacheConfig config)
      : sim_(sim),
        config_(config),
        disk_(sim, config.disk),
        memory_(config.memory_capacity),
        disk_tier_(config.disk_capacity) {}

  ClientCache(const ClientCache&) = delete;
  ClientCache& operator=(const ClientCache&) = delete;

  /// Called whenever an object is pushed out of both tiers.
  void set_eviction_hook(EvictionHook hook) { on_evict_ = std::move(hook); }

  /// Residency query; no timing, no counters.
  [[nodiscard]] CacheTier tier_of(ObjectId id) const;

  /// True if the object is cached in either tier.
  [[nodiscard]] bool contains(ObjectId id) const {
    return tier_of(id) != CacheTier::kNone;
  }

  /// Accesses a cached object (counts a hit and promotes it to the memory
  /// tier, reading from the local disk when it lived in tier 2). `done`
  /// runs when the object is in memory. Returns false — and counts a miss,
  /// without invoking `done` — if the object is not cached; the caller then
  /// fetches it from the server and insert()s it.
  bool access(ObjectId id, bool write, sim::Simulator::Callback done);

  /// Installs an object fetched from the server into the memory tier,
  /// cascading demotions/evictions.
  void insert(ObjectId id, bool dirty = false);

  /// Marks a cached object dirty (in whichever tier). False if absent.
  bool mark_dirty(ObjectId id);

  /// True if cached and dirty.
  [[nodiscard]] bool is_dirty(ObjectId id) const;

  /// Removes an object (e.g. on a server recall). Returns its dirty state,
  /// or nullopt if it was not cached. Does NOT fire the eviction hook —
  /// the caller initiated the removal and handles the consequences.
  std::optional<bool> drop(ObjectId id);

  /// Clears the dirty bit (after the update was returned to the server).
  void mark_clean(ObjectId id);

  /// Crash wipe (fault injection): empties both tiers at once, without
  /// firing the eviction hook — the site lost its volatile state, nothing
  /// orderly happens. Returns the dirty objects that were destroyed so the
  /// caller can account the lost versions.
  std::vector<ObjectId> clear();

  /// Cache-level accounting for the paper's Table 2: a hit is an access
  /// satisfied by either tier.
  [[nodiscard]] std::uint64_t hits() const { return hits_.value(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.value(); }
  [[nodiscard]] double hit_rate() const;

  [[nodiscard]] std::size_t size() const {
    return memory_.size() + disk_tier_.size();
  }

  [[nodiscard]] const Disk& disk() const { return disk_; }

  /// Invariant audit: both tiers pass their own audits and no object is
  /// resident in memory and on the local disk at once. Aborts on violation.
  void validate_invariants() const;

  void reset_stats() {
    hits_.reset();
    misses_.reset();
    disk_.reset_stats();
  }

 private:
  /// Moves an object into the memory tier, demoting the LRU victim to the
  /// disk tier and possibly evicting from there.
  void place_in_memory(ObjectId id, bool dirty);

  sim::Simulator& sim_;
  ClientCacheConfig config_;
  Disk disk_;
  LruBuffer<ObjectId> memory_;
  LruBuffer<ObjectId> disk_tier_;
  EvictionHook on_evict_;
  sim::Counter hits_;
  sim::Counter misses_;
};

}  // namespace rtdb::storage
