#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

/// \file disk.hpp
/// Single-spindle disk model used by the server's paged file and the
/// clients' on-disk cache tier. Requests are served FIFO, one at a time,
/// with a fixed service time per page read/write — a deliberately simple
/// model: the paper's effects live in locking and queueing, not in seek
/// geometry, so a constant-service-time M/D/1-style device suffices.

namespace rtdb::storage {

/// Disk timing parameters.
struct DiskConfig {
  /// Service time of one 2 KB page read (positioning + transfer).
  sim::Duration read_time = sim::msec(8.0);

  /// Service time of one 2 KB page write.
  sim::Duration write_time = sim::msec(8.0);
};

/// A FIFO, single-server disk. `read()` / `write()` return the simulated
/// completion instant and invoke the callback then.
class Disk {
 public:
  Disk(sim::Simulator& sim, DiskConfig config) : sim_(sim), config_(config) {}

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Queues one page read; `done` (optional) runs at completion.
  sim::SimTime read(sim::Simulator::Callback done = {});

  /// Queues one page write; `done` (optional) runs at completion.
  sim::SimTime write(sim::Simulator::Callback done = {});

  /// Pages read / written since construction or reset_stats().
  [[nodiscard]] std::uint64_t reads() const { return reads_.value(); }
  [[nodiscard]] std::uint64_t writes() const { return writes_.value(); }

  /// Fraction of time the disk was busy in the current accounting window.
  double utilization() const;

  void reset_stats();

  [[nodiscard]] const DiskConfig& config() const { return config_; }

 private:
  sim::SimTime submit(sim::Duration service, sim::Simulator::Callback done);

  sim::Simulator& sim_;
  DiskConfig config_;
  sim::SimTime free_at_{};
  sim::Duration busy_accum_{};  ///< busy time in the accounting window
  sim::SimTime stats_epoch_{};
  sim::Counter reads_;
  sim::Counter writes_;
};

}  // namespace rtdb::storage
