#include "storage/disk.hpp"

#include <algorithm>

namespace rtdb::storage {

sim::SimTime Disk::submit(sim::Duration service, sim::Simulator::Callback done) {
  const sim::SimTime start = std::max(sim_.now(), free_at_);
  free_at_ = start + service;
  busy_accum_ += service;
  if (done) sim_.at(free_at_, std::move(done));
  return free_at_;
}

sim::SimTime Disk::read(sim::Simulator::Callback done) {
  reads_.inc();
  return submit(config_.read_time, std::move(done));
}

sim::SimTime Disk::write(sim::Simulator::Callback done) {
  writes_.inc();
  return submit(config_.write_time, std::move(done));
}

double Disk::utilization() const {
  const sim::Duration span = sim_.now() - stats_epoch_;
  if (span <= sim::Duration::zero()) return 0;
  return std::min(1.0, busy_accum_ / span);
}

void Disk::reset_stats() {
  reads_.reset();
  writes_.reset();
  busy_accum_ = sim::Duration::zero();
  stats_epoch_ = sim_.now();
}

}  // namespace rtdb::storage
