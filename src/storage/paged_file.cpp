#include "storage/paged_file.hpp"

#include <cassert>

namespace rtdb::storage {

void PagedFile::install(ObjectId id, bool dirty) {
  auto evicted = buffer_.insert(page_of(id), dirty);
  if (evicted && evicted->dirty) {
    disk_.write();
  }
}

void PagedFile::access(ObjectId id, bool write, sim::Simulator::Callback done) {
  assert(done);
  const PageId page = page_of(id);
  if (buffer_.reference(page)) {
    if (write) buffer_.mark_dirty(page);
    sim_.after(config_.memory_access_time, std::move(done));
    return;
  }
  // Miss: eviction decision happens now; the displaced dirty page's
  // write-back occupies the disk ahead of our read (the PF buffer manager
  // must clean the frame before reusing it).
  auto evicted = buffer_.insert(page, write);
  if (evicted && evicted->dirty) {
    disk_.write();
  }
  disk_.read(std::move(done));
}

}  // namespace rtdb::storage
