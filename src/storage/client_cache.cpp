#include "storage/client_cache.hpp"

#include <cassert>

#include "common/check.hpp"

namespace rtdb::storage {

CacheTier ClientCache::tier_of(ObjectId id) const {
  if (memory_.contains(id)) return CacheTier::kMemory;
  if (disk_tier_.contains(id)) return CacheTier::kDisk;
  return CacheTier::kNone;
}

void ClientCache::place_in_memory(ObjectId id, bool dirty) {
  auto demoted = memory_.insert(id, dirty);
  if (!demoted) return;
  // Demotion writes the object to the local disk cache file.
  disk_.write();
  auto evicted = disk_tier_.insert(demoted->id, demoted->dirty);
  if (evicted && on_evict_) on_evict_(evicted->id, evicted->dirty);
}

bool ClientCache::access(ObjectId id, bool write, sim::Simulator::Callback done) {
  assert(done);
  switch (tier_of(id)) {
    case CacheTier::kMemory: {
      hits_.inc();
      memory_.reference(id);
      if (write) memory_.mark_dirty(id);
      sim_.after(config_.memory_access_time, std::move(done));
      return true;
    }
    case CacheTier::kDisk: {
      hits_.inc();
      const bool was_dirty = disk_tier_.is_dirty(id);
      disk_tier_.erase(id);
      place_in_memory(id, was_dirty || write);
      disk_.read(std::move(done));
      return true;
    }
    case CacheTier::kNone:
      misses_.inc();
      return false;
  }
  return false;  // unreachable
}

void ClientCache::insert(ObjectId id, bool dirty) {
  if (tier_of(id) != CacheTier::kNone) {
    // Already cached (e.g. re-granted lock on a resident object): refresh
    // recency and dirty state in place.
    if (memory_.contains(id)) {
      memory_.reference(id);
      if (dirty) memory_.mark_dirty(id);
    } else if (dirty) {
      disk_tier_.mark_dirty(id);
    }
    return;
  }
  place_in_memory(id, dirty);
}

bool ClientCache::mark_dirty(ObjectId id) {
  return memory_.mark_dirty(id) || disk_tier_.mark_dirty(id);
}

bool ClientCache::is_dirty(ObjectId id) const {
  return memory_.is_dirty(id) || disk_tier_.is_dirty(id);
}

std::optional<bool> ClientCache::drop(ObjectId id) {
  if (auto dirty = memory_.erase(id)) return dirty;
  return disk_tier_.erase(id);
}

void ClientCache::mark_clean(ObjectId id) {
  // Re-inserting at the same tier with a clean bit: BufferManager has no
  // "clear dirty", so erase + insert preserving tier.
  if (memory_.contains(id)) {
    memory_.erase(id);
    memory_.insert(id, /*dirty=*/false);
  } else if (disk_tier_.contains(id)) {
    disk_tier_.erase(id);
    disk_tier_.insert(id, /*dirty=*/false);
  }
}

std::vector<ObjectId> ClientCache::clear() {
  std::vector<ObjectId> dirty;
  for (const ObjectId id : memory_.resident_pages()) {
    if (memory_.is_dirty(id)) dirty.push_back(id);
  }
  for (const ObjectId id : disk_tier_.resident_pages()) {
    if (disk_tier_.is_dirty(id)) dirty.push_back(id);
  }
  for (const ObjectId id : memory_.resident_pages()) memory_.erase(id);
  for (const ObjectId id : disk_tier_.resident_pages()) disk_tier_.erase(id);
  return dirty;
}

void ClientCache::validate_invariants() const {
  memory_.validate_invariants();
  disk_tier_.validate_invariants();
  for (const ObjectId id : memory_.resident_pages()) {
    RTDB_CHECK(!disk_tier_.contains(id),
               "object %u resident in both cache tiers", id);
  }
}

double ClientCache::hit_rate() const {
  const auto total = hits_.value() + misses_.value();
  return total ? static_cast<double>(hits_.value()) /
                     static_cast<double>(total)
               : 0.0;
}

}  // namespace rtdb::storage
