#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

/// \file flat_hash.hpp
/// Open-addressing hash containers for the simulator's hot lock-path tables
/// (ROADMAP "map-heavy lock tables"). Compared with the node-based
/// `std::unordered_*` they replace:
///
///  * one contiguous slot array + one byte of control state per slot — no
///    per-element allocations, no bucket chains to chase;
///  * linear probing over a power-of-two capacity with a strong 64-bit
///    mixer (sequential ids — the common key shape here — spread cleanly);
///  * erasure by tombstone, reclaimed wholesale at the next rehash.
///
/// Determinism contract: iteration (`for_each`) walks the slot array, so
/// the order depends on insertion/erasure history — exactly like the
/// `unordered_*` containers these replace, it must never feed ordered
/// decisions. Callers either aggregate (counts/sums), check invariants, or
/// sort what they collect; the WaitForGraph determinism test pins this.
///
/// Keys must be trivially copyable ids: integral types or strong ids
/// exposing `.value()`.

namespace rtdb::common {

namespace flat_detail {

template <class K>
constexpr std::uint64_t key_of(K k) {
  if constexpr (requires { k.value(); }) {
    return static_cast<std::uint64_t>(k.value());
  } else {
    return static_cast<std::uint64_t>(k);
  }
}

/// splitmix64 finalizer: full-avalanche mixing so dense sequential ids do
/// not cluster under the power-of-two mask.
constexpr std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace flat_detail

/// Open-addressing hash map. V must be default-constructible and movable;
/// erase resets the slot's value to V{} (releasing its resources) and
/// leaves a tombstone.
template <class K, class V>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Slots currently tombstoned (diagnostics/tests).
  [[nodiscard]] std::size_t tombstones() const { return tombs_; }
  [[nodiscard]] std::size_t capacity() const { return ctrl_.size(); }

  [[nodiscard]] V* find(K key) {
    const std::size_t i = find_index(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  [[nodiscard]] const V* find(K key) const {
    const std::size_t i = find_index(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }

  [[nodiscard]] bool contains(K key) const { return find_index(key) != kNpos; }

  /// Returns the value for `key`, inserting a default-constructed one if
  /// absent (the unordered_map::operator[] idiom).
  V& get_or_insert(K key) {
    reserve_for_insert();
    const std::size_t cap = ctrl_.size();
    const std::size_t mask = cap - 1;
    std::size_t i = flat_detail::mix(flat_detail::key_of(key)) & mask;
    std::size_t first_tomb = kNpos;
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == kFull) {
        if (slots_[i].key == key) return slots_[i].value;
      } else if (c == kTomb) {
        if (first_tomb == kNpos) first_tomb = i;
      } else {  // kEmpty: key is absent
        std::size_t target = first_tomb != kNpos ? first_tomb : i;
        if (ctrl_[target] == kTomb) --tombs_;
        ctrl_[target] = kFull;
        slots_[target].key = key;
        slots_[target].value = V{};
        ++size_;
        return slots_[target].value;
      }
      i = (i + 1) & mask;
    }
  }

  /// Removes `key`. Returns true if it was present.
  bool erase(K key) {
    std::size_t i = find_index(key);
    if (i == kNpos) return false;
    ctrl_[i] = kTomb;
    slots_[i].key = K{};
    slots_[i].value = V{};
    --size_;
    ++tombs_;
    // If the next slot is empty, no probe chain passes through this one, so
    // it (and any run of tombstones immediately before it) can revert to
    // empty. Under churn this keeps tombstones from accumulating between
    // sweeps — the dominant rehash trigger for small, sparse tables.
    const std::size_t mask = ctrl_.size() - 1;
    if (ctrl_[(i + 1) & mask] == kEmpty) {
      while (ctrl_[i] == kTomb) {
        ctrl_[i] = kEmpty;
        --tombs_;
        i = (i - 1) & mask;
      }
    }
    return true;
  }

  void clear() {
    ctrl_.clear();
    slots_.clear();
    size_ = 0;
    tombs_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap *= 2;  // keep load under 0.75
    if (cap > ctrl_.size()) rehash(cap);
  }

  /// Visits every (key, value) pair in slot order (NOT a deterministic
  /// order across histories — aggregate, audit, or sort; never decide).
  template <class F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) f(slots_[i].key, slots_[i].value);
    }
  }
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) f(slots_[i].key, slots_[i].value);
    }
  }

  /// Invariant audit: control bytes, live/tombstone tallies and key
  /// positions agree (every full slot is findable from its home bucket).
  void validate_invariants() const {
    std::size_t full = 0, tombs = 0;
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) {
        ++full;
        RTDB_CHECK(find_index(slots_[i].key) == i,
                   "flat table slot %zu unreachable from its home bucket",
                   i);
      } else if (ctrl_[i] == kTomb) {
        ++tombs;
      }
    }
    RTDB_CHECK(full == size_, "flat table size %zu != full slots %zu", size_,
               full);
    RTDB_CHECK(tombs == tombs_, "flat table tombs %zu != tomb slots %zu",
               tombs_, tombs);
  }

 private:
  struct Slot {
    K key{};
    V value{};
  };

  static constexpr std::uint8_t kEmpty = 0, kFull = 1, kTomb = 2;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] std::size_t find_index(K key) const {
    if (ctrl_.empty()) return kNpos;
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = flat_detail::mix(flat_detail::key_of(key)) & mask;
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == kFull && slots_[i].key == key) return i;
      if (c == kEmpty) return kNpos;
      i = (i + 1) & mask;
    }
  }

  void reserve_for_insert() {
    const std::size_t cap = ctrl_.size();
    if (cap == 0) {
      rehash(kMinCapacity);
      return;
    }
    // Rehash when live + tombstoned slots reach 3/4 of capacity: grow if
    // genuinely full, else same-size to sweep tombstones.
    if ((size_ + tombs_ + 1) * 4 > cap * 3) {
      rehash(size_ * 2 >= cap ? cap * 2 : cap);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    ctrl_.assign(new_cap, kEmpty);
    // Fresh vector rather than resize(): resize() instantiates vector's
    // reallocation path, which copy-constructs elements when V's move is
    // not noexcept — and V only needs to be movable here.
    slots_ = std::vector<Slot>(new_cap);
    tombs_ = 0;
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      std::size_t j =
          flat_detail::mix(flat_detail::key_of(old_slots[i].key)) & mask;
      while (ctrl_[j] == kFull) j = (j + 1) & mask;
      ctrl_[j] = kFull;
      slots_[j].key = old_slots[i].key;
      slots_[j].value = std::move(old_slots[i].value);
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

/// Open-addressing hash set: FlatMap with a zero-size payload surface.
template <class K>
class FlatSet {
 public:
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] std::size_t tombstones() const { return map_.tombstones(); }
  [[nodiscard]] std::size_t capacity() const { return map_.capacity(); }

  [[nodiscard]] bool contains(K key) const { return map_.contains(key); }

  /// Returns true if `key` was newly inserted.
  bool insert(K key) {
    const std::size_t before = map_.size();
    (void)map_.get_or_insert(key);
    return map_.size() != before;
  }

  bool erase(K key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  template <class F>
  void for_each(F&& f) const {
    map_.for_each([&](K k, const Empty&) { f(k); });
  }

  void validate_invariants() const { map_.validate_invariants(); }

 private:
  struct Empty {};
  FlatMap<K, Empty> map_;
};

}  // namespace rtdb::common
