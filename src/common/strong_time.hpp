#pragma once

#include <cmath>
#include <limits>
#include <ostream>

/// \file strong_time.hpp
/// Dimension-checked simulated-time quantities.
///
/// Simulated time has two distinct quantities and the type system enforces
/// their algebra:
///
///   - `Tick`     — an absolute instant (seconds since the start of the run);
///   - `Duration` — a signed span of simulated seconds.
///
/// Only dimension-correct arithmetic compiles:
///
///   Tick - Tick         -> Duration        (elapsed span)
///   Tick +/- Duration   -> Tick            (shifted instant)
///   Duration +/- Duration -> Duration
///   Duration * / scalar -> Duration
///   Duration / Duration -> double          (dimensionless ratio)
///
/// `Tick + Tick`, `scalar * Tick`, and mixing either quantity with raw
/// doubles are compile errors (pinned by tests/common/static_checks.cpp).
/// Raw seconds enter through the explicit constructors / `sim::msec` /
/// `sim::usec` and leave through `.sec()` — every boundary with untyped
/// arithmetic (RNG draws, stats, JSON export) is visible at the call site.
///
/// Both types are a single double: trivially copyable, fully constexpr,
/// zero-cost. Value-initialisation is zero. Comparisons are same-type only.

namespace rtdb {

/// A span of simulated time, in seconds. Signed: spans from `late - early`
/// subtraction can be negative (e.g. slack past a deadline).
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(double seconds) : s_(seconds) {}

  /// Raw seconds, for untyped boundaries (stats, export, RNG means).
  [[nodiscard]] constexpr double sec() const { return s_; }

  static constexpr Duration zero() { return Duration{}; }
  static constexpr Duration infinity() {
    return Duration{std::numeric_limits<double>::infinity()};
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{s_ + o.s_}; }
  constexpr Duration operator-(Duration o) const { return Duration{s_ - o.s_}; }
  constexpr Duration operator-() const { return Duration{-s_}; }
  constexpr Duration& operator+=(Duration o) {
    s_ += o.s_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    s_ -= o.s_;
    return *this;
  }

  /// Scaling by a dimensionless factor keeps the dimension.
  constexpr Duration operator*(double k) const { return Duration{s_ * k}; }
  friend constexpr Duration operator*(double k, Duration d) {
    return Duration{k * d.s_};
  }
  constexpr Duration operator/(double k) const { return Duration{s_ / k}; }

  /// Ratio of two spans is dimensionless.
  constexpr double operator/(Duration o) const { return s_ / o.s_; }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.s_;
  }

 private:
  double s_{};
};

/// An absolute simulated instant: seconds since the start of the run.
///
/// A double gives ~microsecond resolution over multi-day simulated horizons,
/// far beyond what the experiments need (second-scale transactions,
/// millisecond-scale I/O and network transfers).
class Tick {
 public:
  constexpr Tick() = default;
  constexpr explicit Tick(double seconds) : s_(seconds) {}

  /// Raw seconds since run start, for untyped boundaries (export, digests).
  [[nodiscard]] constexpr double sec() const { return s_; }

  static constexpr Tick zero() { return Tick{}; }

  /// Sentinel meaning "never" / "no deadline"; after any reachable instant.
  static constexpr Tick infinity() {
    return Tick{std::numeric_limits<double>::infinity()};
  }

  /// True if this is a finite, reachable instant (not the sentinel).
  [[nodiscard]] constexpr bool finite() const {
    return s_ == s_ && s_ != std::numeric_limits<double>::infinity() &&
           s_ != -std::numeric_limits<double>::infinity();
  }

  constexpr auto operator<=>(const Tick&) const = default;

  // The dimension-correct algebra. Deliberately absent: Tick + Tick,
  // scalar * Tick — instants do not add or scale.
  constexpr Tick operator+(Duration d) const { return Tick{s_ + d.sec()}; }
  friend constexpr Tick operator+(Duration d, Tick t) {
    return Tick{d.sec() + t.s_};
  }
  constexpr Tick operator-(Duration d) const { return Tick{s_ - d.sec()}; }
  constexpr Duration operator-(Tick o) const { return Duration{s_ - o.s_}; }
  constexpr Tick& operator+=(Duration d) {
    s_ += d.sec();
    return *this;
  }
  constexpr Tick& operator-=(Duration d) {
    s_ -= d.sec();
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, Tick t) {
    return os << t.s_;
  }

 private:
  double s_{};
};

}  // namespace rtdb
