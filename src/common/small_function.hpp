#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

/// \file small_function.hpp
/// A move-only, small-buffer-optimized callable — the hot-path replacement
/// for `std::function<void()>` in the simulator core (ROADMAP "make the
/// simulator core fast"). Two properties matter there:
///
///  * **Zero steady-state heap traffic.** Captures up to `Capacity` bytes
///    live inline in the object; larger captures are carved from a
///    size-classed free-list pool (`sf_detail::OverflowPool`) that recycles
///    blocks instead of returning them to the allocator, so after warm-up
///    neither path calls `operator new` per event. A CS@100 run schedules
///    ~2M events; with `std::function` each large capture was one malloc +
///    one free on the simulator's hottest path.
///
///  * **Deterministic, simulation-independent behavior.** The pool hands
///    out blocks in LIFO order off plain singly-linked free lists; no
///    addresses, sizes or pool state ever feed back into simulation
///    decisions, so recycling cannot perturb a run (the golden-digest gates
///    prove it).
///
/// Deliberately NOT provided: copying (events fire once; the queue only
/// moves), allocator awareness, and target-type introspection. `operator
/// bool` and implicit construction from any callable mirror the
/// `std::function` surface our call sites actually used.

namespace rtdb::common {

namespace sf_detail {

/// Size-classed LIFO free-list pool for captures that exceed the inline
/// buffer. Blocks are recycled forever (freed to the class list, never to
/// the system); totals are tiny — the steady-state block count equals the
/// peak number of simultaneously-live oversized captures, a few hundred in
/// the largest run. Single-threaded by design, like the simulator itself.
class OverflowPool {
 public:
  static OverflowPool& instance() {
    // rtdb-lint: allow(mutable-static) single-threaded simulator-core pool; recycles callback blocks, never feeds state back into simulation
    static OverflowPool pool;
    return pool;
  }

  void* acquire(std::size_t bytes) {
    const int cls = class_of(bytes);
    if (cls < 0) return ::operator new(bytes);
    if (FreeNode* node = free_[cls]) {
      free_[cls] = node->next;
      return node;
    }
    return ::operator new(kClassBytes[cls]);
  }

  void release(void* p, std::size_t bytes) noexcept {
    const int cls = class_of(bytes);
    if (cls < 0) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kClassBytes[] = {64, 128, 256, 512, 1024};
  static constexpr int kClassCount =
      static_cast<int>(sizeof(kClassBytes) / sizeof(kClassBytes[0]));

  static int class_of(std::size_t bytes) {
    for (int i = 0; i < kClassCount; ++i) {
      if (bytes <= kClassBytes[i]) return i;
    }
    return -1;  // oversized: fall through to the allocator
  }

  FreeNode* free_[kClassCount] = {};
};

}  // namespace sf_detail

/// Default inline-capture capacity: fits `[this]` plus a handful of ids,
/// times and doubles — the shape of nearly every callback the simulator
/// schedules.
inline constexpr std::size_t kSmallFunctionCapacity = 48;

template <class Signature, std::size_t Capacity = kSmallFunctionCapacity>
class SmallFunction;

template <class R, class... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable; implicit like std::function so lambda-passing call
  /// sites compile unchanged.
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    init(std::forward<F>(f));
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction& operator=(F&& f) {
    reset();
    init(std::forward<F>(f));
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return call_ != nullptr; }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  /// Destroys the target (returning any overflow block to the pool) and
  /// becomes empty.
  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, obj_, nullptr);
    obj_ = nullptr;
    call_ = nullptr;
    manage_ = nullptr;
  }

  /// True when the target lives in the inline buffer (test seam: proves a
  /// given capture shape is allocation-free).
  [[nodiscard]] bool is_inline() const {
    return obj_ == static_cast<const void*>(buf_);
  }

 private:
  enum class Op : unsigned char { kDestroy, kMoveDestroy };

  using Call = R (*)(void*, Args&&...);
  /// kDestroy: destroy target at obj (freeing its overflow block).
  /// kMoveDestroy: move target from obj into dst (dst->obj_ set), then
  /// destroy the source target.
  using Manage = void (*)(Op, void* obj, SmallFunction* dst);

  template <class F>
  void init(F&& f) {
    using D = std::decay_t<F>;
    constexpr bool kInline = sizeof(D) <= Capacity &&
                             alignof(D) <= alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<D>;
    if constexpr (kInline) {
      obj_ = ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    } else {
      void* block = sf_detail::OverflowPool::instance().acquire(sizeof(D));
      obj_ = ::new (block) D(std::forward<F>(f));
    }
    call_ = [](void* obj, Args&&... args) -> R {
      return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
    };
    manage_ = &manage_impl<D, kInline>;
  }

  template <class D, bool Inline>
  static void manage_impl(Op op, void* obj, SmallFunction* dst) {
    D* target = static_cast<D*>(obj);
    if (op == Op::kDestroy) {
      target->~D();
      if constexpr (!Inline) {
        sf_detail::OverflowPool::instance().release(obj, sizeof(D));
      }
      return;
    }
    // kMoveDestroy
    if constexpr (Inline) {
      dst->obj_ = ::new (static_cast<void*>(dst->buf_)) D(std::move(*target));
      target->~D();
    } else {
      dst->obj_ = obj;  // steal the pooled block wholesale
    }
  }

  void move_from(SmallFunction& other) noexcept {
    if (other.manage_ == nullptr) return;
    other.manage_(Op::kMoveDestroy, other.obj_, this);
    call_ = other.call_;
    manage_ = other.manage_;
    other.obj_ = nullptr;
    other.call_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  void* obj_ = nullptr;
  Call call_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace rtdb::common
