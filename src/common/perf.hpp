#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

/// \file perf.hpp
/// Performance-observability primitives: monotonic counters and scoped
/// section timers that every subsystem (sim, net, lock, txn, obs) can
/// instrument its hot paths with. This is the *primitive* layer — it lives
/// in common/ because the subsystem DAG forbids sim/net/lock from including
/// obs; the reporting layer (text/JSON summaries, the audited wall-clock
/// seam) is src/obs/perf.hpp.
///
/// Three cost tiers, mirroring the RTDB_CHECK assertion tiers:
///
///  * `RTDB_PERF=0` (compile flag / -DRTDB_PERF_COUNTERS=OFF) — every macro
///    expands to a no-op statement; the instrumentation vanishes entirely.
///    tests/common/perf_compiled_out_test.cpp proves the expansion is a
///    constant expression, i.e. touches no runtime state at all.
///  * counters (default) — always on. One relaxed single-threaded increment
///    of a process-global cell per event; cheap enough for the hottest
///    paths (EventQueue push/pop, Network::send).
///  * section timers — runtime-gated. Disabled (the default) they cost one
///    branch; enabled they read the installed wall clock twice per scope.
///    Only the perf harness, `rtdbctl --perf-report` and rtdb_verify's
///    passivity proof arm them.
///
/// Passivity contract (proven by `rtdb_verify --mode perf`): counters and
/// timers are write-only with respect to the simulation — no simulation
/// code path ever reads them, so enabling or compiling them out cannot
/// change a run's determinism digest.

#ifndef RTDB_PERF
#define RTDB_PERF 1
#endif

namespace rtdb::perf {

/// Monotonic event counters, grouped by owning subsystem. The enumerator
/// order is the JSON/report emission order; names (see to_string) are
/// stable schema keys — append, never reorder or rename.
enum class Counter : std::uint8_t {
  // sim — EventQueue / Simulator
  kSimEventsScheduled = 0,  ///< EventQueue::schedule calls
  kSimEventsFired,          ///< events dispatched by Simulator
  kSimEventsCancelled,      ///< successful EventQueue::cancel calls
  kSimDeadHeadDrops,        ///< lazily purged cancelled heap entries
  // net — Network
  kNetMessages,       ///< counted wire messages (non-loopback sends)
  kNetBytes,          ///< frame bytes across the wire
  kNetLoopbackSends,  ///< same-site sends (scheduling epsilon only)
  kNetBatchSends,     ///< send_batch logical batches
  // lock — GlobalLockTable
  kGltGrants,           ///< add_holder calls (grants + upgrades)
  kGltReleases,         ///< remove_holder calls that dropped a hold
  kGltConflictScans,    ///< holder-vector compatibility scans
  kGltLocationQueries,  ///< location_of calls
  // lock — ForwardList
  kFwdListInserts,       ///< ForwardList::add calls
  kFwdListPops,          ///< entries served by pop_next
  kFwdListExpiredDrops,  ///< expired entries dropped on pop/peek
  // lock — WaitForGraph
  kWfgCycleChecks,   ///< would_deadlock / try_add_edges admission tests
  kWfgEdgesAdded,    ///< edge justifications added
  kWfgNodesRemoved,  ///< remove_node calls
  // txn — EdfQueue
  kEdfPushes,  ///< EdfQueue::push calls
  kEdfPops,    ///< entries popped (ready, expired or unconditional)
  // obs — Telemetry self-report
  kTelSpanOps,         ///< span lifecycle calls that touched a span map
  kTelEventsRecorded,  ///< typed events recorded
  kTelSamples,         ///< gauge samples recorded
  kCounterCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCounterCount);

/// Timed sections — the subsystem entry points the ROADMAP names as the
/// suspected hot paths. Scoped timers nest freely; a nested section's time
/// is *also* attributed to every enclosing section (self-time is not
/// subtracted — see docs/observability.md).
enum class Section : std::uint8_t {
  kSimSchedule = 0,  ///< EventQueue::schedule (heap push)
  kSimPop,           ///< EventQueue::pop (heap pop + dead-head purge)
  kNetSend,          ///< Network::send_raw (wire model + fault seam)
  kGltQuery,         ///< GlobalLockTable conflict scans (H2's territory)
  kWfgCycleCheck,    ///< WaitForGraph deadlock admission DFS
  kFwdList,          ///< ForwardList insert/pop
  kEdfQueue,         ///< EdfQueue push/pop
  kTelemetry,        ///< Telemetry span/event/sample recording
  kSectionCount,
};

inline constexpr std::size_t kSectionCount =
    static_cast<std::size_t>(Section::kSectionCount);

/// Stable report/schema key of a counter (snake_case, subsystem-prefixed).
constexpr const char* to_string(Counter c) {
  switch (c) {
    case Counter::kSimEventsScheduled: return "sim_events_scheduled";
    case Counter::kSimEventsFired: return "sim_events_fired";
    case Counter::kSimEventsCancelled: return "sim_events_cancelled";
    case Counter::kSimDeadHeadDrops: return "sim_dead_head_drops";
    case Counter::kNetMessages: return "net_messages";
    case Counter::kNetBytes: return "net_bytes";
    case Counter::kNetLoopbackSends: return "net_loopback_sends";
    case Counter::kNetBatchSends: return "net_batch_sends";
    case Counter::kGltGrants: return "glt_grants";
    case Counter::kGltReleases: return "glt_releases";
    case Counter::kGltConflictScans: return "glt_conflict_scans";
    case Counter::kGltLocationQueries: return "glt_location_queries";
    case Counter::kFwdListInserts: return "fwd_list_inserts";
    case Counter::kFwdListPops: return "fwd_list_pops";
    case Counter::kFwdListExpiredDrops: return "fwd_list_expired_drops";
    case Counter::kWfgCycleChecks: return "wfg_cycle_checks";
    case Counter::kWfgEdgesAdded: return "wfg_edges_added";
    case Counter::kWfgNodesRemoved: return "wfg_nodes_removed";
    case Counter::kEdfPushes: return "edf_pushes";
    case Counter::kEdfPops: return "edf_pops";
    case Counter::kTelSpanOps: return "tel_span_ops";
    case Counter::kTelEventsRecorded: return "tel_events_recorded";
    case Counter::kTelSamples: return "tel_samples";
    case Counter::kCounterCount: break;
  }
  return "unknown";
}

/// Stable report/schema key of a timed section.
constexpr const char* to_string(Section s) {
  switch (s) {
    case Section::kSimSchedule: return "sim_schedule";
    case Section::kSimPop: return "sim_pop";
    case Section::kNetSend: return "net_send";
    case Section::kGltQuery: return "glt_query";
    case Section::kWfgCycleCheck: return "wfg_cycle_check";
    case Section::kFwdList: return "fwd_list";
    case Section::kEdfQueue: return "edf_queue";
    case Section::kTelemetry: return "telemetry";
    case Section::kSectionCount: break;
  }
  return "unknown";
}

/// The subsystem a counter's figure belongs to (report grouping).
constexpr const char* subsystem_of(Counter c) {
  switch (c) {
    case Counter::kSimEventsScheduled:
    case Counter::kSimEventsFired:
    case Counter::kSimEventsCancelled:
    case Counter::kSimDeadHeadDrops: return "sim";
    case Counter::kNetMessages:
    case Counter::kNetBytes:
    case Counter::kNetLoopbackSends:
    case Counter::kNetBatchSends: return "net";
    case Counter::kGltGrants:
    case Counter::kGltReleases:
    case Counter::kGltConflictScans:
    case Counter::kGltLocationQueries:
    case Counter::kFwdListInserts:
    case Counter::kFwdListPops:
    case Counter::kFwdListExpiredDrops:
    case Counter::kWfgCycleChecks:
    case Counter::kWfgEdgesAdded:
    case Counter::kWfgNodesRemoved: return "lock";
    case Counter::kEdfPushes:
    case Counter::kEdfPops: return "txn";
    case Counter::kTelSpanOps:
    case Counter::kTelEventsRecorded:
    case Counter::kTelSamples: return "obs";
    case Counter::kCounterCount: break;
  }
  return "unknown";
}

/// The subsystem a timed section belongs to (wall-time attribution).
constexpr const char* subsystem_of(Section s) {
  switch (s) {
    case Section::kSimSchedule:
    case Section::kSimPop: return "sim";
    case Section::kNetSend: return "net";
    case Section::kGltQuery:
    case Section::kWfgCycleCheck:
    case Section::kFwdList: return "lock";
    case Section::kEdfQueue: return "txn";
    case Section::kTelemetry: return "obs";
    case Section::kSectionCount: break;
  }
  return "unknown";
}

/// Allocation-attribution scopes. Subsystem entry points mark themselves
/// with RTDB_PERF_ALLOC_SCOPE so a counting allocator (bench/perf_core.cpp
/// replaces global operator new in its own TU) can bucket every heap
/// allocation by the subsystem that was on the stack. Always-on — one byte
/// store on entry and exit — because the census must not depend on the
/// runtime-gated section timers being armed. Like the counters, the scope
/// cell is write-only for the simulation itself: nothing in src/ reads it,
/// so it cannot affect determinism.
enum class AllocScopeId : std::uint8_t {
  kSim = 0,
  kNet,
  kLock,
  kTxn,
  kObs,
  kNone,  ///< no tagged subsystem on the stack (protocol/core code)
};

/// Number of *tagged* scopes (excludes kNone).
inline constexpr std::size_t kAllocScopeCount = 5;

constexpr const char* to_string(AllocScopeId s) {
  switch (s) {
    case AllocScopeId::kSim: return "sim";
    case AllocScopeId::kNet: return "net";
    case AllocScopeId::kLock: return "lock";
    case AllocScopeId::kTxn: return "txn";
    case AllocScopeId::kObs: return "obs";
    case AllocScopeId::kNone: break;
  }
  return "untagged";
}

namespace detail {

/// Clock signature: monotonic nanoseconds. Installed by the reporting
/// layer (obs::perf_enable_timing routes it through the one audited
/// obs::WallClock seam); tests install deterministic fakes.
using ClockFn = std::uint64_t (*)();

/// The process-global registry. Deliberately global mutable state (the
/// only kind instrumentation this cheap can use): it is write-only with
/// respect to the simulation — nothing in src/ ever branches on a counter
/// or timer value — so it cannot break determinism, and the multi-server
/// refactor can keep it (perf cells are per-process diagnostics, not
/// simulation state). Inline variable: one instance across all TUs.
struct Registry {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kSectionCount> section_ns{};
  std::array<std::uint64_t, kSectionCount> section_hits{};
  ClockFn clock = nullptr;
  bool timing = false;
  AllocScopeId alloc_scope = AllocScopeId::kNone;
};

// rtdb-lint: allow(mutable-static) the process-wide perf registry is the
// audited observability seam; the sharding PR gives each shard its own
inline Registry g_registry{};

constexpr std::size_t idx(Counter c) { return static_cast<std::size_t>(c); }
constexpr std::size_t idx(Section s) { return static_cast<std::size_t>(s); }

}  // namespace detail

/// Increment / bulk-add entry points the macros expand to. Callable
/// directly (the macros are preferred: they compile out under RTDB_PERF=0).
inline void count(Counter c) { ++detail::g_registry.counters[detail::idx(c)]; }
inline void add(Counter c, std::uint64_t n) {
  detail::g_registry.counters[detail::idx(c)] += n;
}

[[nodiscard]] inline std::uint64_t counter_value(Counter c) {
  return detail::g_registry.counters[detail::idx(c)];
}
[[nodiscard]] inline std::uint64_t section_ns(Section s) {
  return detail::g_registry.section_ns[detail::idx(s)];
}
[[nodiscard]] inline std::uint64_t section_hits(Section s) {
  return detail::g_registry.section_hits[detail::idx(s)];
}
[[nodiscard]] inline bool timing_enabled() {
  return detail::g_registry.timing;
}

/// The innermost tagged subsystem on the current call stack (kNone outside
/// every tagged scope). Read by counting allocators; never by src/ code.
[[nodiscard]] inline AllocScopeId alloc_scope() {
  return detail::g_registry.alloc_scope;
}

/// Arms/disarms section timing. `clock` must be non-null when arming;
/// obs::perf_enable_timing passes the audited WallClock seam, unit tests
/// pass deterministic fakes.
inline void set_timing(bool on, detail::ClockFn clock = nullptr) {
  detail::g_registry.timing = on && clock != nullptr;
  detail::g_registry.clock = clock;
}

/// Zeroes every counter and section accumulator (timing arm state is kept).
/// Harnesses call this at measurement boundaries.
inline void reset() {
  detail::g_registry.counters.fill(0);
  detail::g_registry.section_ns.fill(0);
  detail::g_registry.section_hits.fill(0);
}

/// A copy of the registry's accumulators at one instant.
struct Snapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kSectionCount> section_ns{};
  std::array<std::uint64_t, kSectionCount> section_hits{};

  [[nodiscard]] std::uint64_t counter(Counter c) const {
    return counters[detail::idx(c)];
  }
  [[nodiscard]] std::uint64_t ns(Section s) const {
    return section_ns[detail::idx(s)];
  }
  [[nodiscard]] std::uint64_t hits(Section s) const {
    return section_hits[detail::idx(s)];
  }
};

[[nodiscard]] inline Snapshot snapshot() {
  Snapshot s;
  s.counters = detail::g_registry.counters;
  s.section_ns = detail::g_registry.section_ns;
  s.section_hits = detail::g_registry.section_hits;
  return s;
}

/// RAII section timer. Disarmed (timing off) construction and destruction
/// cost one branch each; armed, each costs one clock read. The class is
/// always defined (API parity across RTDB_PERF settings) — only the
/// RTDB_PERF_TIMER macro's willingness to instantiate it changes.
class ScopedTimer {
 public:
  explicit ScopedTimer(Section s) {
    if (!detail::g_registry.timing) return;
    section_ = s;
    start_ = detail::g_registry.clock();
    armed_ = true;
  }
  ~ScopedTimer() {
    if (!armed_) return;
    auto& r = detail::g_registry;
    // Disarmed mid-scope (set_timing(false) between ctor and dtor): the
    // clock may be gone; drop the sample.
    if (!r.timing) return;
    r.section_ns[detail::idx(section_)] += r.clock() - start_;
    ++r.section_hits[detail::idx(section_)];
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Section section_{};
  std::uint64_t start_ = 0;
  bool armed_ = false;
};

/// RAII allocation-attribution scope: tags allocations made while it lives
/// with a subsystem (see AllocScopeId). Nesting is innermost-wins, restored
/// on exit. Unconditional — two byte stores per scope — so the census works
/// without arming the timers.
class AllocScope {
 public:
  explicit AllocScope(AllocScopeId s) : prev_(detail::g_registry.alloc_scope) {
    detail::g_registry.alloc_scope = s;
  }
  ~AllocScope() { detail::g_registry.alloc_scope = prev_; }
  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;

 private:
  AllocScopeId prev_;
};

}  // namespace rtdb::perf

// The instrumentation macros. Call sites use these (never the functions
// directly) so -DRTDB_PERF=0 erases the whole layer.
#if RTDB_PERF
#define RTDB_PERF_CAT2(a, b) a##b
#define RTDB_PERF_CAT(a, b) RTDB_PERF_CAT2(a, b)
#define RTDB_PERF_COUNT(counter) \
  ::rtdb::perf::count(::rtdb::perf::Counter::counter)
#define RTDB_PERF_ADD(counter, n) \
  ::rtdb::perf::add(::rtdb::perf::Counter::counter, (n))
#define RTDB_PERF_TIMER(section)                            \
  ::rtdb::perf::ScopedTimer RTDB_PERF_CAT(rtdb_perf_timer_, \
                                          __LINE__) {       \
    ::rtdb::perf::Section::section                          \
  }
#define RTDB_PERF_ALLOC_SCOPE(scope)                            \
  ::rtdb::perf::AllocScope RTDB_PERF_CAT(rtdb_perf_alloc_,     \
                                         __LINE__) {           \
    ::rtdb::perf::AllocScopeId::scope                          \
  }
#else
#define RTDB_PERF_COUNT(counter) ((void)0)
#define RTDB_PERF_ADD(counter, n) ((void)0)
#define RTDB_PERF_TIMER(section) ((void)0)
#define RTDB_PERF_ALLOC_SCOPE(scope) ((void)0)
#endif
