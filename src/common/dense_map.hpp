#pragma once

#include <cstddef>
#include <vector>

/// \file dense_map.hpp
/// Directly-indexed replacement for `unordered_map<Id, V>` keyed by *dense*
/// strong ids (the workload numbers objects 0..db_size-1 and clients 1..N).
/// A grow-on-write vector where a defaulted or out-of-range slot means "no
/// entry" — callers that relied on unordered_map's absent-means-default
/// reads (version 0, mode kNone, count 0) keep identical semantics while a
/// lookup collapses to one bounds check and one indexed load.
///
/// Not a general map: there is no occupancy bit, so V{} and "absent" are
/// indistinguishable by design — only use it where the map it replaces
/// treated the two identically. No iteration is offered either; every
/// consumer does point reads/writes (the audits that need enumeration keep
/// real tables).

namespace rtdb::common {

/// `Id` must expose `value()` convertible to an unsigned index.
template <class Id, class V>
class DenseArray {
 public:
  /// Read-only lookup: the stored value, or `V{}` when never written.
  [[nodiscard]] V value_or_default(Id id) const {
    const auto i = static_cast<std::size_t>(id.value());
    return i < slots_.size() ? slots_[i] : V{};
  }

  /// Mutable slot, growing the backing store on demand (operator[] idiom).
  [[nodiscard]] V& slot(Id id) {
    const auto i = static_cast<std::size_t>(id.value());
    if (i >= slots_.size()) slots_.resize(i + 1);
    return slots_[i];
  }

  /// Erase-equivalent: resets the slot to V{} without shrinking.
  void reset(Id id) {
    const auto i = static_cast<std::size_t>(id.value());
    if (i < slots_.size()) slots_[i] = V{};
  }

  /// Drops every entry (capacity kept).
  void clear() { slots_.clear(); }

  /// Backing-store extent (highest written id + 1, diagnostics only).
  [[nodiscard]] std::size_t extent() const { return slots_.size(); }

 private:
  std::vector<V> slots_;
};

}  // namespace rtdb::common
