#pragma once

#include <cstdint>

/// \file ids.hpp
/// Identifiers shared by every rtdb subsystem.

namespace rtdb {

/// A database object. The paper's database holds 10,000 fixed-size (2 KB)
/// objects; one object occupies exactly one paged-file page.
using ObjectId = std::uint32_t;

/// A transaction, unique across the whole cluster for one run.
using TxnId = std::uint64_t;

/// A cluster site. The database server is site 0; clients are 1..N.
/// The LS configuration's directory server is modelled inside the network
/// (it only forwards), so it does not need its own SiteId.
using SiteId = std::int32_t;

inline constexpr SiteId kServerSite = 0;
inline constexpr SiteId kInvalidSite = -1;
inline constexpr TxnId kInvalidTxn = 0;

/// First client SiteId; clients are contiguous [kFirstClientSite, N].
inline constexpr SiteId kFirstClientSite = 1;

}  // namespace rtdb
