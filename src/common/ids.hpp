#pragma once

#include "common/strong_id.hpp"

/// \file ids.hpp
/// Identifiers shared by every rtdb subsystem.
///
/// Since the strong-typing pass, this header only re-exports the tagged id
/// types defined in common/strong_id.hpp — ObjectId, TxnId, SiteId, ClientId,
/// PageId and their constants/conversions — so existing includes keep working.
/// See that header (and docs/analysis.md) for the type rules.
