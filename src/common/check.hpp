#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

/// \file check.hpp
/// The runtime invariant-audit layer's assertion primitives. Three tiers:
///
///  * `RTDB_CHECK(cond, fmt, ...)`  — always compiled in, in every build
///    type. For cheap conditions whose violation means the process state is
///    garbage (protocol invariants, accounting balance). Prints a formatted
///    message and aborts.
///  * `RTDB_ASSERT(cond, fmt, ...)` — compiled out under NDEBUG (i.e. in
///    Release/RelWithDebInfo), active in Debug builds. For moderately
///    priced checks on hot paths.
///  * `RTDB_DCHECK(cond, fmt, ...)` — active only when RTDB_ENABLE_DCHECKS
///    is defined (Debug builds and any `-DRTDB_SANITIZE=...` build define
///    it; see the top-level CMakeLists). For expensive whole-structure
///    walks — the `validate_invariants()` methods are built from these.
///
/// All three evaluate `cond` exactly once when active and not at all when
/// compiled out (the condition must therefore be side-effect free). The
/// message is printf-style and optional:
///
///     RTDB_CHECK(holders == index.size(), "holders=%zu index=%zu",
///                holders, index.size());

namespace rtdb::common {

/// True when the expensive debug-check tier is compiled in.
constexpr bool dchecks_enabled() {
#ifdef RTDB_ENABLE_DCHECKS
  return true;
#else
  return false;
#endif
}

namespace detail {

/// Prints the failure banner + formatted message and aborts. Never returns.
[[noreturn]] inline void check_fail(const char* file, int line,
                                    const char* expr, const char* fmt, ...) {
  std::fprintf(stderr, "rtdb: CHECK failed at %s:%d: %s", file, line, expr);
  if (fmt && fmt[0] != '\0') {
    std::va_list args;
    va_start(args, fmt);
    char buf[1024];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    std::fprintf(stderr, " — %s", buf);
  }
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace rtdb::common

// The ""-prefix trick makes the message arguments optional: with no
// varargs the format string degenerates to "" and check_fail skips it.
#define RTDB_CHECK(cond, ...)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::rtdb::common::detail::check_fail(__FILE__, __LINE__, #cond,    \
                                         "" __VA_ARGS__);              \
    }                                                                  \
  } while (0)

#ifndef NDEBUG
#define RTDB_ASSERT(cond, ...) RTDB_CHECK(cond, __VA_ARGS__)
#else
#define RTDB_ASSERT(cond, ...) \
  do {                         \
  } while (0)
#endif

#ifdef RTDB_ENABLE_DCHECKS
#define RTDB_DCHECK(cond, ...) RTDB_CHECK(cond, __VA_ARGS__)
#else
#define RTDB_DCHECK(cond, ...) \
  do {                         \
  } while (0)
#endif
