#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

/// \file strong_id.hpp
/// Zero-cost strong identifier types for the rtdb protocol surface.
///
/// The protocols juggle many same-shaped integers — site ids, client ids,
/// object ids, transaction ids, page ids — and a single transposed
/// `(SiteId, TxnId)` pair silently corrupts a forward list or a wait-for-graph
/// edge. Each id is therefore its own type: explicitly constructed from its
/// representation, never implicitly convertible to another id or to a raw
/// integer. Swapping two differently-typed arguments is a compile error, which
/// is what lets `.clang-tidy` keep `bugprone-easily-swappable-parameters`
/// enabled over the whole protocol surface.
///
/// Properties (pinned by tests/common/static_checks.cpp):
///   - trivially copyable, sizeof(Id) == sizeof(Rep), fully constexpr;
///   - value-initialised ids are zero;
///   - totally ordered and equality-comparable against the same id type only;
///   - hashable (std::hash specialisation) for unordered containers;
///   - streamable / to_string-able for traces and digests;
///   - ordinal: `++id` exists so `[first, last)` id ranges can be iterated.
///
/// To add a new id: declare a tag struct, alias StrongId over it, and list it
/// in tests/common/static_checks.cpp (see docs/analysis.md, "Adding a new
/// strong id / time quantity").

namespace rtdb {

/// A tagged integral identifier. `Tag` only disambiguates the type; `RepT` is
/// the wire/storage representation.
template <class Tag, class RepT>
class StrongId {
 public:
  using Rep = RepT;

  /// Value-initialises to zero (matches the old raw-integer behaviour).
  constexpr StrongId() = default;

  /// Explicit on purpose: every raw-integer -> id boundary must be visible.
  constexpr explicit StrongId(Rep v) : v_(v) {}

  /// The raw representation, for arithmetic/IO boundaries only.
  [[nodiscard]] constexpr Rep value() const { return v_; }

  /// Same-type comparisons only; cross-id comparison does not compile.
  constexpr auto operator<=>(const StrongId&) const = default;

  /// Ordinal successor — ids number contiguous ranges (clients 1..N,
  /// objects 0..D-1), so range iteration stays natural.
  constexpr StrongId& operator++() {
    ++v_;
    return *this;
  }
  constexpr StrongId operator++(int) {
    StrongId prev = *this;
    ++v_;
    return prev;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.v_;
  }

 private:
  Rep v_{};
};

template <class Tag, class RepT>
[[nodiscard]] std::string to_string(StrongId<Tag, RepT> id) {
  return std::to_string(id.value());
}

// ----------------------------------------------------------------- the ids

/// A database object. The paper's database holds 10,000 fixed-size (2 KB)
/// objects; one object occupies exactly one paged-file page.
using ObjectId = StrongId<struct ObjectIdTag, std::uint32_t>;

/// A transaction, unique across the whole cluster for one run.
using TxnId = StrongId<struct TxnIdTag, std::uint64_t>;

/// A cluster site: the database server (site 0) or a client workstation
/// (1..N). Use this where either endpoint can legitimately appear (network
/// accounting, telemetry); use ClientId where only a client makes sense.
using SiteId = StrongId<struct SiteIdTag, std::int32_t>;

/// A client workstation site (1..N). Distinct from SiteId so that protocol
/// signatures which must name a *client* (forward-list holders, lock owners,
/// workload streams) cannot be handed the server or a raw site by accident.
/// Convert explicitly: `site_of(client)` widens, `client_of(site)` narrows
/// (asserting the site really is a client).
using ClientId = StrongId<struct ClientIdTag, std::int32_t>;

/// A page of the server's paged file. The seed database maps one object to
/// exactly one page (`page_of`), but the storage layer is typed against pages
/// so the 1:1 assumption lives in a single named function, not in every
/// buffer/disk signature.
using PageId = StrongId<struct PageIdTag, std::uint32_t>;

// ----------------------------------------------------------- the constants

/// The database server is site 0; clients are 1..N.
inline constexpr SiteId kServerSite{0};
inline constexpr SiteId kInvalidSite{-1};
inline constexpr TxnId kInvalidTxn{0};

/// First client SiteId; clients are contiguous [kFirstClientSite, N].
inline constexpr SiteId kFirstClientSite{1};

/// First ClientId; clients are contiguous [kFirstClient, N].
inline constexpr ClientId kFirstClient{1};

/// No-client sentinel (0 is the server's site number, never a client).
inline constexpr ClientId kInvalidClient{0};

// --------------------------------------------------------- the conversions

/// A client is a site; widening is always valid.
[[nodiscard]] constexpr SiteId site_of(ClientId c) { return SiteId{c.value()}; }

/// Narrow a site to a client. Precondition: the site is a client (>= 1).
[[nodiscard]] constexpr ClientId client_of(SiteId s) {
  assert(s >= kFirstClientSite);
  return ClientId{s.value()};
}

/// True if `s` names a client workstation (not the server / not invalid).
[[nodiscard]] constexpr bool is_client_site(SiteId s) {
  return s >= kFirstClientSite;
}

/// The page holding `o`. The seed database is 1 object : 1 page.
[[nodiscard]] constexpr PageId page_of(ObjectId o) { return PageId{o.value()}; }

}  // namespace rtdb

template <class Tag, class RepT>
struct std::hash<rtdb::StrongId<Tag, RepT>> {
  std::size_t operator()(rtdb::StrongId<Tag, RepT> id) const noexcept {
    return std::hash<RepT>{}(id.value());
  }
};
