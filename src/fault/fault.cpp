#include "fault/fault.hpp"

#include <cstdio>
#include <stdexcept>

namespace rtdb::fault {

namespace {

bool window_covers(sim::SimTime start, sim::SimTime end, sim::SimTime t) {
  return t >= start && t < end;
}

std::string check_prob(const char* what, double p) {
  if (p < 0.0 || p > 1.0) {
    return std::string(what) + " must lie in [0, 1]";
  }
  return {};
}

std::string check_kind_faults(const char* what, const KindFaults& f) {
  const std::pair<const char*, double> probs[] = {
      {"drop", f.drop}, {"duplicate", f.duplicate}, {"delay", f.delay}};
  for (const auto& [name, p] : probs) {
    if (auto err = check_prob(name, p); !err.empty()) {
      return std::string(what) + "." + err;
    }
  }
  return {};
}

}  // namespace

bool FaultPlan::empty() const {
  if (force_active) return false;
  if (all_kinds.any()) return false;
  for (std::size_t k = 0; k < net::kMessageKindCount; ++k) {
    if (per_kind_set[k] && per_kind[k].any()) return false;
  }
  return partitions.empty() && crashes.empty() && server_crashes.empty();
}

sim::SimTime FaultPlan::effective_end(const ServerCrashWindow& w) const {
  if (!warm_standby) return w.end;
  const sim::SimTime promoted = w.start + standby_failover;
  return promoted < w.end ? promoted : w.end;
}

bool FaultPlan::server_down(sim::SimTime t) const {
  for (const auto& w : server_crashes) {
    if (window_covers(w.start, effective_end(w), t)) return true;
  }
  return false;
}

sim::SimTime FaultPlan::server_restart_time(sim::SimTime t) const {
  for (const auto& w : server_crashes) {
    if (window_covers(w.start, effective_end(w), t)) {
      return effective_end(w);
    }
  }
  return sim::kTimeInfinity;
}

std::string FaultPlan::validate() const {
  if (auto err = check_kind_faults("fault.all_kinds", all_kinds);
      !err.empty()) {
    return err;
  }
  for (std::size_t k = 0; k < net::kMessageKindCount; ++k) {
    if (!per_kind_set[k]) continue;
    if (auto err = check_kind_faults("fault.per_kind", per_kind[k]);
        !err.empty()) {
      return err;
    }
  }
  if (extra_delay < sim::Duration::zero()) {
    return "fault.extra_delay must be non-negative";
  }
  for (const auto& p : partitions) {
    if (p.client == kInvalidClient) {
      return "fault.partition names an invalid client";
    }
    if (p.end <= p.start) return "fault.partition window is empty or inverted";
  }
  for (const auto& c : crashes) {
    if (c.client == kInvalidClient) {
      return "fault.crash names an invalid client";
    }
    if (c.end <= c.start) return "fault.crash window is empty or inverted";
  }
  if (!server_crashes.empty() && !allow_server_crash) {
    return "fault.server_crashes requires fault.allow_server_crash";
  }
  if (warm_standby && !allow_server_crash) {
    return "fault.warm_standby requires fault.allow_server_crash";
  }
  if (recovery_disabled && !allow_server_crash) {
    return "fault.recovery_disabled requires fault.allow_server_crash";
  }
  if (warm_standby && recovery_disabled) {
    return "fault.warm_standby and fault.recovery_disabled are exclusive";
  }
  for (std::size_t i = 0; i < server_crashes.size(); ++i) {
    const auto& w = server_crashes[i];
    if (w.end <= w.start) {
      return "fault.server_crash window is empty or inverted";
    }
    if (i > 0 && w.start < server_crashes[i - 1].end) {
      return "fault.server_crash windows must be sorted and non-overlapping";
    }
  }
  const std::pair<const char*, sim::Duration> timeouts[] = {
      {"fault.request_timeout", request_timeout},
      {"fault.recall_timeout", recall_timeout},
      {"fault.return_timeout", return_timeout},
      {"fault.detection_delay", detection_delay},
      {"fault.circulation_grace", circulation_grace},
      {"fault.server_recovery_grace", server_recovery_grace},
      {"fault.standby_failover", standby_failover}};
  for (const auto& [name, d] : timeouts) {
    if (d <= sim::Duration::zero()) {
      return std::string(name) + " must be positive";
    }
  }
  if (outage_jitter_bound < sim::Duration::zero()) {
    return "fault.outage_jitter_bound must be non-negative";
  }
  return {};
}

std::uint64_t FaultStats::digest() const {
  std::uint64_t h = UINT64_C(0xcbf29ce484222325);
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= UINT64_C(0x100000001b3);
    }
  };
  // The legacy counter set folds unconditionally: these positions define
  // the pinned chaos digests. Counters (and message kinds) added for the
  // server-outage work fold only when nonzero, prefixed with their index —
  // runs that never crash the server keep their digests byte-identical to
  // the pinned corpus, while any server-outage activity lands in the hash
  // without positional aliasing.
  for (std::size_t k = 0; k < net::kLegacyKindCount; ++k) {
    fold(drops_by_kind[k]);
  }
  for (std::size_t k = net::kLegacyKindCount; k < drops_by_kind.size(); ++k) {
    if (drops_by_kind[k] == 0) continue;
    fold(k);
    fold(drops_by_kind[k]);
  }
  for (const std::uint64_t v :
       {dropped, partition_drops, crash_drops, duplicates,
        duplicates_suppressed, delays, crashes, recoveries, retransmits,
        recall_retransmits, return_retransmits, duplicate_grants,
        stale_grants_ignored, duplicate_requests_ignored,
        duplicate_returns_ignored,
        duplicate_validates_ignored, orphan_locks_reclaimed,
        queue_entries_reclaimed, forward_reroutes, circulation_repairs,
        lost_versions, crash_wiped_pages, arrivals_while_down,
        candidates_filtered, local_fallbacks}) {
    fold(v);
  }
  const std::uint64_t fresh[] = {
      server_crashes,     server_recoveries,
      server_failovers,   server_crash_drops,
      reasserts_sent,     reasserts_accepted,
      duplicate_reasserts_ignored, stale_epoch_rejected,
      lease_expiries,     outage_deferrals,
      deadline_early_aborts, grace_parked,
      standby_mutations};
  for (std::size_t i = 0; i < std::size(fresh); ++i) {
    if (fresh[i] == 0) continue;
    fold(UINT64_C(0x1000) + i);
    fold(fresh[i]);
  }
  return h;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

const KindFaults& FaultInjector::faults_for(net::MessageKind kind) const {
  const auto k = static_cast<std::size_t>(kind);
  return plan_.per_kind_set[k] ? plan_.per_kind[k] : plan_.all_kinds;
}

bool FaultInjector::down(SiteId site, sim::SimTime t) const {
  if (site == kServerSite) return server_down(t);
  const ClientId c = client_of(site);
  for (const auto& w : plan_.crashes) {
    if (w.client == c && window_covers(w.start, w.end, t)) return true;
  }
  return false;
}

bool FaultInjector::partitioned(SiteId a, SiteId b, sim::SimTime t) const {
  // Partition windows separate one client from the server; client-to-client
  // traffic relays through the directory server and is unaffected.
  const SiteId client_side = a == kServerSite ? b : a;
  if (a != kServerSite && b != kServerSite) return false;
  if (client_side == kServerSite) return false;
  const ClientId c = client_of(client_side);
  for (const auto& w : plan_.partitions) {
    if (w.client == c && window_covers(w.start, w.end, t)) return true;
  }
  return false;
}

net::FaultVerdict FaultInjector::judge(SiteId src, SiteId dst,
                                       net::MessageKind kind,
                                       sim::SimTime now) {
  net::FaultVerdict v;
  if (partitioned(src, dst, now)) {
    ++stats_.partition_drops;
    v.drop = true;
    return v;  // a partitioned frame is simply gone; no further judging
  }
  const KindFaults& f = faults_for(kind);
  // Draw every probability unconditionally so the verdict stream depends
  // only on the send sequence, not on which faults happen to be enabled —
  // schedules that share a seed stay comparable.
  const bool drop = rng_.bernoulli(f.drop);
  const bool dup = rng_.bernoulli(f.duplicate);
  const bool delay = rng_.bernoulli(f.delay);
  if (drop) {
    ++stats_.dropped;
    ++stats_.drops_by_kind[static_cast<std::size_t>(kind)];
    v.drop = true;
  }
  if (dup) {
    ++stats_.duplicates;
    v.duplicate = true;
  }
  if (delay && !drop) {
    ++stats_.delays;
    v.extra_delay = plan_.extra_delay;
  }
  return v;
}

bool FaultInjector::judge_delivery(SiteId dst, sim::SimTime when) {
  if (!down(dst, when)) return true;
  if (dst == kServerSite) {
    ++stats_.server_crash_drops;
  } else {
    ++stats_.crash_drops;
  }
  return false;
}

FaultPlan make_chaos_plan(std::string_view name, std::size_t num_clients,
                          sim::SimTime t0, sim::SimTime t1) {
  FaultPlan plan;
  plan.seed = 7;
  const sim::Duration span = t1 - t0;
  const auto frac = [&](double a) { return t0 + span * a; };
  const auto nth_client = [&](std::size_t i) {
    return ClientId{static_cast<ClientId::Rep>(1 + (i % num_clients))};
  };
  if (name == "null-active") {
    // No perturbation at all, but the recovery machinery (timers, acks,
    // idempotent handlers) is armed: proves it is harmless when unneeded.
    plan.force_active = true;
  } else if (name == "lossy") {
    plan.all_kinds.drop = 0.02;
    plan.all_kinds.duplicate = 0.01;
    plan.all_kinds.delay = 0.05;
    plan.extra_delay = sim::msec(25);
  } else if (name == "partition") {
    plan.partitions.push_back({nth_client(0), frac(0.2), frac(0.35)});
    plan.partitions.push_back({nth_client(1), frac(0.5), frac(0.6)});
  } else if (name == "crashes") {
    plan.crashes.push_back({nth_client(0), frac(0.25), frac(0.45)});
    plan.crashes.push_back({nth_client(2), frac(0.55), frac(0.7)});
    // One client never comes back.
    plan.crashes.push_back({nth_client(4), frac(0.8), sim::kTimeInfinity});
  } else if (name == "mixed") {
    plan.all_kinds.drop = 0.01;
    plan.all_kinds.duplicate = 0.005;
    plan.all_kinds.delay = 0.02;
    plan.extra_delay = sim::msec(15);
    plan.partitions.push_back({nth_client(1), frac(0.3), frac(0.4)});
    plan.crashes.push_back({nth_client(3), frac(0.5), frac(0.65)});
  } else if (name == "server-crash") {
    // Two clean server outages; clients re-assert through the grace window.
    plan.allow_server_crash = true;
    plan.server_crashes.push_back({frac(0.25), frac(0.33)});
    plan.server_crashes.push_back({frac(0.6), frac(0.66)});
  } else if (name == "server-standby") {
    // Same outages, but a warm standby is promoted — the failover axis.
    plan.allow_server_crash = true;
    plan.warm_standby = true;
    plan.server_crashes.push_back({frac(0.25), frac(0.33)});
    plan.server_crashes.push_back({frac(0.6), frac(0.66)});
  } else if (name == "server-mixed") {
    // Lossy wire + one server outage + one client crash overlapping the
    // recovery tail: re-assertions themselves get dropped and retried.
    plan.allow_server_crash = true;
    plan.all_kinds.drop = 0.01;
    plan.all_kinds.duplicate = 0.005;
    plan.all_kinds.delay = 0.02;
    plan.extra_delay = sim::msec(15);
    plan.server_crashes.push_back({frac(0.4), frac(0.47)});
    plan.crashes.push_back({nth_client(2), frac(0.55), frac(0.7)});
  } else {
    throw std::invalid_argument("unknown chaos schedule: " +
                                std::string(name));
  }
  return plan;
}

std::vector<std::string_view> chaos_schedule_names() {
  return {"null-active", "lossy", "partition", "crashes", "mixed"};
}

std::vector<std::string_view> server_chaos_schedule_names() {
  return {"server-crash", "server-standby", "server-mixed"};
}

sim::Duration outage_jitter(std::uint64_t seed, std::uint64_t salt,
                            std::uint64_t attempt, sim::Duration bound) {
  if (bound <= sim::Duration::zero()) return sim::Duration::zero();
  // splitmix64 finalizer over the mixed inputs.
  std::uint64_t z = seed ^ (salt * UINT64_C(0x9e3779b97f4a7c15)) ^
                    (attempt * UINT64_C(0xbf58476d1ce4e5b9));
  z += UINT64_C(0x9e3779b97f4a7c15);
  z = (z ^ (z >> 30)) * UINT64_C(0xbf58476d1ce4e5b9);
  z = (z ^ (z >> 27)) * UINT64_C(0x94d049bb133111eb);
  z ^= z >> 31;
  const double fraction =
      static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
  return bound * fraction;
}

std::string describe(const FaultPlan& plan) {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "seed=%llu drop=%.3f dup=%.3f delay=%.3f(+%.0fms) "
                "partitions=%zu crashes=%zu force_active=%d "
                "server_crashes=%zu grace=%.0fms standby=%d "
                "failover=%.0fms recovery_disabled=%d",
                static_cast<unsigned long long>(plan.seed),
                plan.all_kinds.drop, plan.all_kinds.duplicate,
                plan.all_kinds.delay, plan.extra_delay.sec() * 1e3,
                plan.partitions.size(), plan.crashes.size(),
                plan.force_active ? 1 : 0, plan.server_crashes.size(),
                plan.server_recovery_grace.sec() * 1e3,
                plan.warm_standby ? 1 : 0,
                plan.standby_failover.sec() * 1e3,
                plan.recovery_disabled ? 1 : 0);
  return buf;
}

}  // namespace rtdb::fault
