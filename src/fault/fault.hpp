#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "net/fault_hook.hpp"
#include "net/message.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file fault.hpp
/// Deterministic fault injection: what can go wrong, when, and how often.
///
/// A FaultPlan is pure data — probabilities per message kind, timed
/// client<->server partitions, scheduled client crash/recover windows, and
/// the recovery-protocol tuning (timeouts, retry budgets). A FaultInjector
/// turns a plan into per-send verdicts from its *own* seeded stream, so a
/// given (plan, seed) perturbs a run identically every time: chaos runs are
/// replayable and their determinism digests are pinned just like the
/// fault-free ones. An empty plan installs nothing and the run is
/// byte-identical to a fault-free build (scripts/golden_digests.txt).

namespace rtdb::fault {

/// Perturbation probabilities for one message kind.
struct KindFaults {
  double drop = 0.0;       ///< P(frame transmitted but lost)
  double duplicate = 0.0;  ///< P(a second copy crosses the wire)
  double delay = 0.0;      ///< P(delivery delayed by FaultPlan::extra_delay)

  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || delay > 0;
  }
};

/// One timed client<->server partition: messages between the client and the
/// server (either direction) are dropped while now is in [start, end).
struct PartitionWindow {
  ClientId client = kInvalidClient;
  sim::SimTime start{};
  sim::SimTime end = sim::kTimeInfinity;
};

/// One scheduled client crash: at `start` the site loses all volatile state
/// (cache, local locks, in-flight transactions); at `end` it rejoins cold.
/// end == kTimeInfinity means the site never recovers.
struct CrashWindow {
  ClientId client = kInvalidClient;
  sim::SimTime start{};
  sim::SimTime end = sim::kTimeInfinity;
};

/// One scheduled *server* crash: at `start` the server loses all volatile
/// state (global lock table, forward lists, queued transactions); at `end`
/// it restarts and rebuilds via the epoch-leased recovery protocol — or, if
/// the plan arms a warm standby, the standby is promoted after
/// FaultPlan::standby_failover and the window effectively ends early.
struct ServerCrashWindow {
  sim::SimTime start{};
  sim::SimTime end = sim::kTimeInfinity;
};

/// The full, deterministic schedule of everything that will go wrong.
struct FaultPlan {
  /// Seed of the injector's private random stream (independent of the
  /// workload seed: the same chaos hits runs of different workloads).
  std::uint64_t seed = 1;

  /// Baseline probabilities applied to every message kind; per-kind
  /// overrides below replace the baseline for that kind.
  KindFaults all_kinds;
  std::array<KindFaults, net::kMessageKindCount> per_kind{};
  std::array<bool, net::kMessageKindCount> per_kind_set{};

  /// Extra delivery delay applied when a delay fault fires.
  sim::Duration extra_delay = sim::msec(20);

  std::vector<PartitionWindow> partitions;
  std::vector<CrashWindow> crashes;

  /// Capability gate: server crash windows are only honoured when this is
  /// set. Keeps legacy plans (which never imagined a crashable server)
  /// byte-identical and makes the blast radius of a schedule explicit.
  bool allow_server_crash = false;
  /// Scheduled server outages (sorted, non-overlapping; see validate()).
  std::vector<ServerCrashWindow> server_crashes;
  /// Grace window after a cold restart during which surviving lock holders
  /// re-assert their grants before the server serves new work.
  sim::Duration server_recovery_grace = sim::msec(600);
  /// Arm a warm standby replica: lock-table mutations stream to a backup
  /// which is promoted standby_failover after a crash, skipping the grace
  /// rebuild entirely (the window's effective end moves up).
  bool warm_standby = false;
  sim::Duration standby_failover = sim::msec(50);
  /// Bound of the seeded jitter added to client retries deferred across a
  /// server outage (decorrelates the post-restart retry thundering herd).
  sim::Duration outage_jitter_bound = sim::msec(40);
  /// Testing hook (rtdb_verify --no-recovery): the restarted server skips
  /// the epoch bump + grace rebuild and serves from an empty lock table —
  /// the WILL_FAIL gate proving recovery is what keeps ledgers clean.
  bool recovery_disabled = false;

  /// Treat the plan as active even when it injects nothing. Exercises the
  /// recovery machinery (timers, acks, idempotent handlers) on a healthy
  /// network — the "null chaos" gate.
  bool force_active = false;

  // --- recovery-protocol tuning (used only while a plan is active) --------
  /// Client re-sends an unanswered object-request batch after this long.
  sim::Duration request_timeout = sim::msec(400);
  /// Bounded retransmission budget per request/return.
  std::uint32_t max_retransmits = 3;
  /// Server re-sends an unanswered recall (callback) after this long.
  sim::Duration recall_timeout = sim::msec(600);
  /// Client re-sends an unacknowledged dirty object return after this long.
  sim::Duration return_timeout = sim::msec(400);
  /// Crash-to-declared-dead lag at the server (orphan-lock reclamation).
  sim::Duration detection_delay = sim::msec(800);
  /// Grace beyond the last entry's deadline before the server repairs a
  /// circulating forward list by re-shipping its own copy.
  sim::Duration circulation_grace = sim::msec(500);

  /// Sets a per-kind override.
  void set_kind(net::MessageKind kind, KindFaults f) {
    per_kind[static_cast<std::size_t>(kind)] = f;
    per_kind_set[static_cast<std::size_t>(kind)] = true;
  }

  /// True when the plan perturbs nothing and force_active is off: no
  /// injector is installed and runs are byte-identical to fault-free ones.
  [[nodiscard]] bool empty() const;

  /// Empty string when the plan is well-formed, else the first problem
  /// (probabilities outside [0,1], negative durations, inverted windows).
  [[nodiscard]] std::string validate() const;

  /// When the server actually comes back for window `w`: with a warm
  /// standby armed, promotion at start + standby_failover can pre-empt the
  /// scheduled end; without one, the scheduled end.
  [[nodiscard]] sim::SimTime effective_end(const ServerCrashWindow& w) const;

  /// True while the server is inside one of its (effective) crash windows.
  [[nodiscard]] bool server_down(sim::SimTime t) const;

  /// Effective end of the window covering `t` (kTimeInfinity when the
  /// server is up at `t` or never recovers).
  [[nodiscard]] sim::SimTime server_restart_time(sim::SimTime t) const;
};

/// Counters for every injected fault and every recovery action. The chaos
/// verifier proves each perturbed run accounts its faults here; the digest
/// folds into the run digest so chaos runs pin cross-build determinism.
struct FaultStats {
  // Injection side (counted by the injector).
  std::array<std::uint64_t, net::kMessageKindCount> drops_by_kind{};
  std::uint64_t dropped = 0;                ///< probabilistic wire losses
  std::uint64_t partition_drops = 0;        ///< losses due to partitions
  std::uint64_t crash_drops = 0;            ///< deliveries to a down site
  std::uint64_t duplicates = 0;             ///< duplicate frames transmitted
  std::uint64_t duplicates_suppressed = 0;  ///< dedup'd at the receiver
  std::uint64_t delays = 0;                 ///< delayed deliveries
  std::uint64_t crashes = 0;                ///< crash windows entered
  std::uint64_t recoveries = 0;             ///< crash windows left

  // Recovery side (counted by the protocol layers).
  std::uint64_t retransmits = 0;            ///< request batches re-sent
  std::uint64_t recall_retransmits = 0;     ///< recalls re-sent by server
  std::uint64_t return_retransmits = 0;     ///< dirty returns re-sent
  std::uint64_t duplicate_grants = 0;       ///< re-grants for lost grants
  std::uint64_t stale_grants_ignored = 0;   ///< grant payload older than cache
  std::uint64_t duplicate_requests_ignored = 0;
  std::uint64_t duplicate_returns_ignored = 0;
  std::uint64_t duplicate_validates_ignored = 0;
  std::uint64_t orphan_locks_reclaimed = 0;
  std::uint64_t queue_entries_reclaimed = 0;
  std::uint64_t forward_reroutes = 0;       ///< chain hops around dead sites
  std::uint64_t circulation_repairs = 0;    ///< watchdog re-ships
  std::uint64_t lost_versions = 0;          ///< accounted dirty-data losses
  std::uint64_t crash_wiped_pages = 0;
  std::uint64_t arrivals_while_down = 0;
  std::uint64_t candidates_filtered = 0;    ///< H1/H2 skipped dead sites
  std::uint64_t local_fallbacks = 0;        ///< ship/subtask ran locally

  // Server-outage side (windows accounted separately from client windows so
  // chaos replay digests distinguish them; recovery counters are bumped by
  // the epoch-leased rebuild protocol).
  std::uint64_t server_crashes = 0;          ///< server windows entered
  std::uint64_t server_recoveries = 0;       ///< grace-rebuild restarts
  std::uint64_t server_failovers = 0;        ///< warm-standby promotions
  std::uint64_t server_crash_drops = 0;      ///< deliveries to the down server
  std::uint64_t reasserts_sent = 0;          ///< re-registration batches sent
  std::uint64_t reasserts_accepted = 0;      ///< holder entries re-installed
  std::uint64_t duplicate_reasserts_ignored = 0;
  std::uint64_t stale_epoch_rejected = 0;    ///< pre-epoch grants/recalls
  std::uint64_t lease_expiries = 0;          ///< holders that missed the grace
  std::uint64_t outage_deferrals = 0;        ///< retries parked past restart
  std::uint64_t deadline_early_aborts = 0;   ///< slack < projected recovery
  std::uint64_t grace_parked = 0;            ///< batches parked during grace
  std::uint64_t standby_mutations = 0;       ///< ops streamed to the standby

  /// Total perturbations injected into the run.
  [[nodiscard]] std::uint64_t injected() const {
    return dropped + partition_drops + crash_drops + duplicates + delays +
           crashes + server_crashes + server_crash_drops;
  }

  /// FNV-1a over every counter (order-stable).
  [[nodiscard]] std::uint64_t digest() const;
};

/// Turns a FaultPlan into deterministic per-send verdicts; implements the
/// network's fault seam and carries the run's fault/recovery counters.
class FaultInjector final : public net::FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  // net::FaultHook
  net::FaultVerdict judge(SiteId src, SiteId dst, net::MessageKind kind,
                          sim::SimTime now) override;
  bool judge_delivery(SiteId dst, sim::SimTime when) override;
  void on_duplicate_suppressed() override { ++stats_.duplicates_suppressed; }

  /// True while `site` is inside one of its crash windows (the server's
  /// windows count only when the plan allows server crashes).
  [[nodiscard]] bool down(SiteId site, sim::SimTime t) const;
  [[nodiscard]] bool down(ClientId client, sim::SimTime t) const {
    return down(site_of(client), t);
  }

  /// True while the server is inside one of its (effective) outage windows.
  [[nodiscard]] bool server_down(sim::SimTime t) const {
    return plan_.allow_server_crash && plan_.server_down(t);
  }

  /// True while messages between `a` and `b` are partitioned away.
  [[nodiscard]] bool partitioned(SiteId a, SiteId b, sim::SimTime t) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] FaultStats& stats() { return stats_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  [[nodiscard]] const KindFaults& faults_for(net::MessageKind kind) const;

  FaultPlan plan_;
  sim::Rng rng_;
  FaultStats stats_;
};

/// Named chaos schedules used by rtdb_verify --chaos and the ctest gates.
/// `t0`/`t1` bound the measurement window so crash/partition windows land
/// inside it. Throws std::invalid_argument for an unknown name.
FaultPlan make_chaos_plan(std::string_view name, std::size_t num_clients,
                          sim::SimTime t0, sim::SimTime t1);

/// The library's schedule names, in a stable order.
std::vector<std::string_view> chaos_schedule_names();

/// Server-outage schedule names (rtdb_verify --chaos-server), in a stable
/// order. Kept separate from chaos_schedule_names() so the legacy chaos
/// digests never move.
std::vector<std::string_view> server_chaos_schedule_names();

/// Deterministic retry jitter for requests deferred across a server outage:
/// a pure splitmix64 hash of (seed, salt, attempt) scaled into [0, bound).
/// Stateless by design — it consumes no RNG stream, so arming it cannot
/// shift any other seeded draw.
sim::Duration outage_jitter(std::uint64_t seed, std::uint64_t salt,
                            std::uint64_t attempt, sim::Duration bound);

/// One-line human description of a plan (schedule dumps in CI artifacts).
std::string describe(const FaultPlan& plan);

}  // namespace rtdb::fault
