#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "net/fault_hook.hpp"
#include "net/message.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file fault.hpp
/// Deterministic fault injection: what can go wrong, when, and how often.
///
/// A FaultPlan is pure data — probabilities per message kind, timed
/// client<->server partitions, scheduled client crash/recover windows, and
/// the recovery-protocol tuning (timeouts, retry budgets). A FaultInjector
/// turns a plan into per-send verdicts from its *own* seeded stream, so a
/// given (plan, seed) perturbs a run identically every time: chaos runs are
/// replayable and their determinism digests are pinned just like the
/// fault-free ones. An empty plan installs nothing and the run is
/// byte-identical to a fault-free build (scripts/golden_digests.txt).

namespace rtdb::fault {

/// Perturbation probabilities for one message kind.
struct KindFaults {
  double drop = 0.0;       ///< P(frame transmitted but lost)
  double duplicate = 0.0;  ///< P(a second copy crosses the wire)
  double delay = 0.0;      ///< P(delivery delayed by FaultPlan::extra_delay)

  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || delay > 0;
  }
};

/// One timed client<->server partition: messages between the client and the
/// server (either direction) are dropped while now is in [start, end).
struct PartitionWindow {
  ClientId client = kInvalidClient;
  sim::SimTime start{};
  sim::SimTime end = sim::kTimeInfinity;
};

/// One scheduled client crash: at `start` the site loses all volatile state
/// (cache, local locks, in-flight transactions); at `end` it rejoins cold.
/// end == kTimeInfinity means the site never recovers.
struct CrashWindow {
  ClientId client = kInvalidClient;
  sim::SimTime start{};
  sim::SimTime end = sim::kTimeInfinity;
};

/// The full, deterministic schedule of everything that will go wrong.
struct FaultPlan {
  /// Seed of the injector's private random stream (independent of the
  /// workload seed: the same chaos hits runs of different workloads).
  std::uint64_t seed = 1;

  /// Baseline probabilities applied to every message kind; per-kind
  /// overrides below replace the baseline for that kind.
  KindFaults all_kinds;
  std::array<KindFaults, net::kMessageKindCount> per_kind{};
  std::array<bool, net::kMessageKindCount> per_kind_set{};

  /// Extra delivery delay applied when a delay fault fires.
  sim::Duration extra_delay = sim::msec(20);

  std::vector<PartitionWindow> partitions;
  std::vector<CrashWindow> crashes;

  /// Treat the plan as active even when it injects nothing. Exercises the
  /// recovery machinery (timers, acks, idempotent handlers) on a healthy
  /// network — the "null chaos" gate.
  bool force_active = false;

  // --- recovery-protocol tuning (used only while a plan is active) --------
  /// Client re-sends an unanswered object-request batch after this long.
  sim::Duration request_timeout = sim::msec(400);
  /// Bounded retransmission budget per request/return.
  std::uint32_t max_retransmits = 3;
  /// Server re-sends an unanswered recall (callback) after this long.
  sim::Duration recall_timeout = sim::msec(600);
  /// Client re-sends an unacknowledged dirty object return after this long.
  sim::Duration return_timeout = sim::msec(400);
  /// Crash-to-declared-dead lag at the server (orphan-lock reclamation).
  sim::Duration detection_delay = sim::msec(800);
  /// Grace beyond the last entry's deadline before the server repairs a
  /// circulating forward list by re-shipping its own copy.
  sim::Duration circulation_grace = sim::msec(500);

  /// Sets a per-kind override.
  void set_kind(net::MessageKind kind, KindFaults f) {
    per_kind[static_cast<std::size_t>(kind)] = f;
    per_kind_set[static_cast<std::size_t>(kind)] = true;
  }

  /// True when the plan perturbs nothing and force_active is off: no
  /// injector is installed and runs are byte-identical to fault-free ones.
  [[nodiscard]] bool empty() const;

  /// Empty string when the plan is well-formed, else the first problem
  /// (probabilities outside [0,1], negative durations, inverted windows).
  [[nodiscard]] std::string validate() const;
};

/// Counters for every injected fault and every recovery action. The chaos
/// verifier proves each perturbed run accounts its faults here; the digest
/// folds into the run digest so chaos runs pin cross-build determinism.
struct FaultStats {
  // Injection side (counted by the injector).
  std::array<std::uint64_t, net::kMessageKindCount> drops_by_kind{};
  std::uint64_t dropped = 0;                ///< probabilistic wire losses
  std::uint64_t partition_drops = 0;        ///< losses due to partitions
  std::uint64_t crash_drops = 0;            ///< deliveries to a down site
  std::uint64_t duplicates = 0;             ///< duplicate frames transmitted
  std::uint64_t duplicates_suppressed = 0;  ///< dedup'd at the receiver
  std::uint64_t delays = 0;                 ///< delayed deliveries
  std::uint64_t crashes = 0;                ///< crash windows entered
  std::uint64_t recoveries = 0;             ///< crash windows left

  // Recovery side (counted by the protocol layers).
  std::uint64_t retransmits = 0;            ///< request batches re-sent
  std::uint64_t recall_retransmits = 0;     ///< recalls re-sent by server
  std::uint64_t return_retransmits = 0;     ///< dirty returns re-sent
  std::uint64_t duplicate_grants = 0;       ///< re-grants for lost grants
  std::uint64_t stale_grants_ignored = 0;   ///< grant payload older than cache
  std::uint64_t duplicate_requests_ignored = 0;
  std::uint64_t duplicate_returns_ignored = 0;
  std::uint64_t duplicate_validates_ignored = 0;
  std::uint64_t orphan_locks_reclaimed = 0;
  std::uint64_t queue_entries_reclaimed = 0;
  std::uint64_t forward_reroutes = 0;       ///< chain hops around dead sites
  std::uint64_t circulation_repairs = 0;    ///< watchdog re-ships
  std::uint64_t lost_versions = 0;          ///< accounted dirty-data losses
  std::uint64_t crash_wiped_pages = 0;
  std::uint64_t arrivals_while_down = 0;
  std::uint64_t candidates_filtered = 0;    ///< H1/H2 skipped dead sites
  std::uint64_t local_fallbacks = 0;        ///< ship/subtask ran locally

  /// Total perturbations injected into the run.
  [[nodiscard]] std::uint64_t injected() const {
    return dropped + partition_drops + crash_drops + duplicates + delays +
           crashes;
  }

  /// FNV-1a over every counter (order-stable).
  [[nodiscard]] std::uint64_t digest() const;
};

/// Turns a FaultPlan into deterministic per-send verdicts; implements the
/// network's fault seam and carries the run's fault/recovery counters.
class FaultInjector final : public net::FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  // net::FaultHook
  net::FaultVerdict judge(SiteId src, SiteId dst, net::MessageKind kind,
                          sim::SimTime now) override;
  bool judge_delivery(SiteId dst, sim::SimTime when) override;
  void on_duplicate_suppressed() override { ++stats_.duplicates_suppressed; }

  /// True while `site` is inside one of its crash windows.
  [[nodiscard]] bool down(SiteId site, sim::SimTime t) const;
  [[nodiscard]] bool down(ClientId client, sim::SimTime t) const {
    return down(site_of(client), t);
  }

  /// True while messages between `a` and `b` are partitioned away.
  [[nodiscard]] bool partitioned(SiteId a, SiteId b, sim::SimTime t) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] FaultStats& stats() { return stats_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  [[nodiscard]] const KindFaults& faults_for(net::MessageKind kind) const;

  FaultPlan plan_;
  sim::Rng rng_;
  FaultStats stats_;
};

/// Named chaos schedules used by rtdb_verify --chaos and the ctest gates.
/// `t0`/`t1` bound the measurement window so crash/partition windows land
/// inside it. Throws std::invalid_argument for an unknown name.
FaultPlan make_chaos_plan(std::string_view name, std::size_t num_clients,
                          sim::SimTime t0, sim::SimTime t1);

/// The library's schedule names, in a stable order.
std::vector<std::string_view> chaos_schedule_names();

/// One-line human description of a plan (schedule dumps in CI artifacts).
std::string describe(const FaultPlan& plan);

}  // namespace rtdb::fault
