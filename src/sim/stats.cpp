#include "sim/stats.hpp"

namespace rtdb::sim {

void MeanAccumulator::merge(const MeanAccumulator& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double SampleStats::quantile(double q) {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

void SampleStats::reset() {
  samples_.clear();
  acc_.reset();
  sorted_ = true;
}

}  // namespace rtdb::sim
