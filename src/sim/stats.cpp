#include "sim/stats.hpp"

namespace rtdb::sim {

void MeanAccumulator::merge(const MeanAccumulator& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double SampleStats::quantile(double q) {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

void SampleStats::merge(const SampleStats& o) {
  samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
  acc_.merge(o.acc_);
  if (!o.samples_.empty()) sorted_ = false;
}

std::uint64_t Histogram::total() const {
  std::uint64_t t = underflow + overflow;
  for (const auto c : counts) t += c;
  return t;
}

Histogram SampleStats::log_histogram(double lo, double hi,
                                     std::size_t buckets) const {
  Histogram h;
  if (!(lo > 0) || !(hi > lo) || buckets == 0) return h;
  h.lo = lo;
  h.hi = hi;
  h.edges.resize(buckets + 1);
  h.counts.assign(buckets, 0);
  const double log_ratio = std::log(hi / lo);
  for (std::size_t i = 0; i <= buckets; ++i) {
    h.edges[i] = lo * std::exp(log_ratio * static_cast<double>(i) /
                               static_cast<double>(buckets));
  }
  // Pin the outer edges exactly — exp/log round trips drift in the last ulp.
  h.edges.front() = lo;
  h.edges.back() = hi;
  for (const double x : samples_) {
    if (x < lo) {
      ++h.underflow;
    } else if (x >= hi) {
      ++h.overflow;
    } else {
      auto i = static_cast<std::size_t>(std::log(x / lo) / log_ratio *
                                        static_cast<double>(buckets));
      if (i >= buckets) i = buckets - 1;
      // Float rounding can land a sample one bucket off its half-open
      // [edge[i], edge[i+1]) home; nudge it back.
      while (i > 0 && x < h.edges[i]) --i;
      while (i + 1 < buckets && x >= h.edges[i + 1]) ++i;
      ++h.counts[i];
    }
  }
  return h;
}

void SampleStats::reset() {
  samples_.clear();
  acc_.reset();
  sorted_ = true;
}

}  // namespace rtdb::sim
