#pragma once

#include <cmath>
#include <limits>

/// \file time.hpp
/// Simulated-time primitives shared by every rtdb subsystem.
///
/// The cluster is modelled by a discrete-event simulation; all latencies the
/// paper measured in wall-clock seconds (transaction lengths, deadlines,
/// object response times) are expressed in seconds of simulated time.

namespace rtdb::sim {

/// Simulated time, in seconds since the start of the run.
///
/// A double gives ~microsecond resolution over multi-day simulated horizons,
/// far beyond what the experiments need (second-scale transactions,
/// millisecond-scale I/O and network transfers).
using SimTime = double;

/// A duration in simulated seconds.
using Duration = double;

/// Sentinel meaning "never" / "no deadline"; larger than any reachable time.
inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

/// Smallest duration used to break ties deterministically when two actions
/// must be ordered but are scheduled "at the same instant".
inline constexpr Duration kTimeEpsilon = 1e-9;

/// True if `t` is a finite, reachable instant.
inline bool is_finite_time(SimTime t) { return std::isfinite(t); }

/// Milliseconds expressed in simulated seconds.
constexpr Duration msec(double ms) { return ms * 1e-3; }

/// Microseconds expressed in simulated seconds.
constexpr Duration usec(double us) { return us * 1e-6; }

}  // namespace rtdb::sim
