#pragma once

#include "common/strong_time.hpp"

/// \file time.hpp
/// Simulated-time primitives shared by every rtdb subsystem.
///
/// The cluster is modelled by a discrete-event simulation; all latencies the
/// paper measured in wall-clock seconds (transaction lengths, deadlines,
/// object response times) are expressed in seconds of simulated time.
///
/// Since the strong-typing pass the quantities are dimension-checked types
/// from common/strong_time.hpp: `SimTime` is an absolute instant (a
/// `rtdb::Tick`) and `Duration` a span; only dimension-correct arithmetic
/// compiles (see that header).

namespace rtdb::sim {

/// Simulated time: an absolute instant, seconds since the start of the run.
using SimTime = rtdb::Tick;

/// A duration in simulated seconds.
using Duration = rtdb::Duration;

/// Sentinel meaning "never" / "no deadline"; larger than any reachable time.
inline constexpr SimTime kTimeInfinity = SimTime::infinity();

/// Smallest duration used to break ties deterministically when two actions
/// must be ordered but are scheduled "at the same instant".
inline constexpr Duration kTimeEpsilon{1e-9};

/// True if `t` is a finite, reachable instant.
inline bool is_finite_time(SimTime t) { return t.finite(); }

/// Seconds expressed as a typed duration.
constexpr Duration seconds(double s) { return Duration{s}; }

/// Milliseconds expressed in simulated seconds.
constexpr Duration msec(double ms) { return Duration{ms * 1e-3}; }

/// Microseconds expressed in simulated seconds.
constexpr Duration usec(double us) { return Duration{us * 1e-6}; }

}  // namespace rtdb::sim
