#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

/// \file simulator.hpp
/// The discrete-event simulation driver.
///
/// Every component of the modelled cluster (clients, server, LAN, disks)
/// holds a reference to one Simulator and expresses its behaviour as
/// callbacks scheduled at future instants. The simulator advances the clock
/// from event to event; nothing happens "between" events.

namespace rtdb::sim {

/// Discrete-event simulation clock and scheduler.
///
/// Determinism: for a fixed seed and fixed schedule order the run is exactly
/// reproducible — simultaneous events fire in schedule order.
class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now. Negative delays are
  /// clamped to zero (fire "immediately", after already-queued events at
  /// the current instant).
  EventId after(Duration delay, Callback fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    return at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (>= now, else clamped to now).
  EventId at(SimTime when, Callback fn) {
    if (when < now_) when = now_;
    return queue_.schedule(when, std::move(fn));
  }

  /// Cancels a scheduled event. Returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains or `horizon` is passed, whichever is
  /// first. Events at exactly `horizon` still fire. Returns the number of
  /// events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Runs until the event queue drains. Returns events executed.
  std::uint64_t run() { return run_until(kTimeInfinity); }

  /// Executes exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Live events still scheduled.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Hard cap on events per run_until call, as a runaway-loop backstop.
  /// Exceeding it throws std::runtime_error. Default: 4 billion (off).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Registers an invariant-audit hook that runs after every `interval`
  /// executed events (plus the simulator's own queue audit). interval = 0
  /// disarms. The hook must not schedule or cancel events.
  void set_audit_hook(std::uint64_t interval, Callback hook) {
    audit_interval_ = interval;
    audit_hook_ = std::move(hook);
  }

  /// Audits the event queue's internal bookkeeping.
  void validate_invariants() const { queue_.validate_invariants(); }

 private:
  /// Fires the registered audit hook when an interval boundary is crossed.
  void maybe_audit() {
    if (audit_interval_ == 0 || executed_ % audit_interval_ != 0) return;
    queue_.validate_invariants();
    if (audit_hook_) audit_hook_();
  }

  EventQueue queue_;
  SimTime now_{};
  std::uint64_t executed_ = 0;
  std::uint64_t event_limit_ = UINT64_C(4'000'000'000);
  std::uint64_t audit_interval_ = 0;
  Callback audit_hook_;
};

}  // namespace rtdb::sim
