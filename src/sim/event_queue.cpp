#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

#include "common/check.hpp"
#include "common/perf.hpp"

namespace rtdb::sim {

void EventQueue::validate_invariants() const {
  std::size_t live = 0, cancelled = 0, free_slots = 0;
  for (const Slot& s : slots_) {
    switch (s.state) {
      case kLive: ++live; break;
      case kCancelled: ++cancelled; break;
      case kFree: ++free_slots; break;
      default:
        RTDB_CHECK(false, "slot in unknown state %u", unsigned{s.state});
    }
  }
  RTDB_CHECK(live == live_, "live count %zu != live slots %zu", live_, live);
  RTDB_CHECK(cancelled == cancelled_,
             "cancelled count %zu != cancelled slots %zu", cancelled_,
             cancelled);
  RTDB_CHECK(heap_.size() == live + cancelled,
             "heap holds %zu items, slots account for %zu", heap_.size(),
             live + cancelled);
  // Heap items map 1:1 onto non-free slots: the slot's sequence number must
  // match (a mismatch means a slot was recycled while still in the heap).
  for (const HeapItem& item : heap_) {
    RTDB_CHECK(item.slot < slots_.size(), "heap item names slot %u of %zu",
               item.slot, slots_.size());
    const Slot& s = slots_[item.slot];
    RTDB_CHECK(s.state != kFree, "heap item references free slot %u",
               item.slot);
    RTDB_CHECK(s.seq == item.seq,
               "heap item seq %llu != slot seq %llu (slot %u recycled "
               "under a live heap item)",
               static_cast<unsigned long long>(item.seq),
               static_cast<unsigned long long>(s.seq), item.slot);
    RTDB_CHECK(!(s.state == kLive) || s.time == item.time,
               "heap item time disagrees with its live slot");
  }
  // Heap order property.
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    const std::size_t parent = (i - 1) / kHeapArity;
    RTDB_CHECK(!earlier(heap_[i], heap_[parent]),
               "heap property violated at index %zu", i);
  }
  // Free list: acyclic (bounded walk) and accounts for every free slot.
  std::size_t walked = 0;
  for (std::uint32_t s = free_head_; s != kNoSlot; s = slots_[s].next_free) {
    RTDB_CHECK(s < slots_.size(), "free list references slot %u of %zu", s,
               slots_.size());
    RTDB_CHECK(slots_[s].state == kFree, "free list holds non-free slot %u",
               s);
    ++walked;
    RTDB_CHECK(walked <= slots_.size(), "free list cycle detected");
  }
  RTDB_CHECK(walked == free_slots,
             "free list holds %zu slots, %zu slots are free", walked,
             free_slots);
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.state = kFree;
  ++s.gen;  // retire every id handed out for this tenancy
  s.next_free = free_head_;
  free_head_ = slot;
}

// A 4-ary heap, sifted by moving the hole rather than swapping: half the
// element moves of the textbook binary version and a quarter of the depth,
// which matters because these two functions bracket every simulated event.
// Pop order is unaffected by arity — (time, seq) keys are unique, so the
// sequence of minimums is the same total order either way.

void EventQueue::heap_push(HeapItem item) {
  heap_.push_back(item);  // grow first; the hole starts at the new slot
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!earlier(item, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void EventQueue::heap_pop() {
  assert(!heap_.empty());
  const HeapItem item = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = kHeapArity * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kHeapArity, n);
    std::size_t smallest = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[smallest])) smallest = c;
    }
    if (!earlier(heap_[smallest], item)) break;
    heap_[i] = heap_[smallest];
    i = smallest;
  }
  heap_[i] = item;
}

EventId EventQueue::schedule(SimTime at, Callback fn) {
  assert(fn && "scheduling an empty callback");
  RTDB_PERF_TIMER(kSimSchedule);
  RTDB_PERF_ALLOC_SCOPE(kSim);
  RTDB_PERF_COUNT(kSimEventsScheduled);
  // rtdb-lint: allow(hot-path-alloc) slab grows to the live-event high-water
  // mark, then the free list recycles slots (PR 8 census: zero steady-state)
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.time = at;
  s.seq = next_seq_++;
  s.state = kLive;
  s.fn = std::move(fn);
  // rtdb-lint: allow(hot-path-alloc) heap vector reaches high-water capacity
  // during warm-up; pops shrink size, capacity is reused
  heap_push(HeapItem{at, s.seq, slot});
  ++live_;
  return make_id(s.gen, slot);
}

bool EventQueue::cancel(EventId id) {
  const auto low = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (low == 0) return false;  // kNoEvent / malformed
  const std::uint32_t slot = low - 1;
  if (slot >= slots_.size()) return false;  // never existed
  Slot& s = slots_[slot];
  if (s.state != kLive || s.gen != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // fired, cancelled, or a stale-generation handle
  }
  RTDB_PERF_COUNT(kSimEventsCancelled);
  s.state = kCancelled;
  s.fn.reset();  // release the capture (and any pooled block) eagerly
  --live_;
  ++cancelled_;
  return true;
}

void EventQueue::drop_dead_head() {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_[0].slot;
    if (slots_[slot].state == kLive) return;
    RTDB_PERF_COUNT(kSimDeadHeadDrops);
    release_slot(slot);
    --cancelled_;
    heap_pop();
  }
}

SimTime EventQueue::next_time() const {
  // Lazily purge cancelled entries from the head so the reported time is
  // that of a live event. Logically const: observable state is unchanged.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_head();
  if (heap_.empty()) return kTimeInfinity;
  return heap_[0].time;
}

EventQueue::Fired EventQueue::pop() {
  RTDB_PERF_TIMER(kSimPop);
  RTDB_PERF_ALLOC_SCOPE(kSim);
  RTDB_PERF_COUNT(kSimEventsFired);
  drop_dead_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const HeapItem head = heap_[0];
  Slot& s = slots_[head.slot];
  Fired fired{s.time, make_id(s.gen, head.slot), std::move(s.fn)};
  release_slot(head.slot);
  heap_pop();
  --live_;
  return fired;
}

}  // namespace rtdb::sim
