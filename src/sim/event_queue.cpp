#include "sim/event_queue.hpp"

#include <cassert>

#include "common/check.hpp"
#include "common/perf.hpp"

namespace rtdb::sim {

void EventQueue::validate_invariants() const {
  RTDB_CHECK(pending_.size() == live_, "live count %zu != pending set %zu",
             live_, pending_.size());
  RTDB_CHECK(heap_.size() == pending_.size() + cancelled_.size(),
             "heap holds %zu entries, sets account for %zu", heap_.size(),
             pending_.size() + cancelled_.size());
  for (const EventId id : cancelled_) {
    RTDB_CHECK(pending_.count(id) == 0,
               "event %llu is both pending and cancelled",
               static_cast<unsigned long long>(id));
  }
}

EventId EventQueue::schedule(SimTime at, Callback fn) {
  assert(fn && "scheduling an empty callback");
  RTDB_PERF_TIMER(kSimSchedule);
  RTDB_PERF_COUNT(kSimEventsScheduled);
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  pending_.insert(id);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;  // fired, cancelled, or unknown
  RTDB_PERF_COUNT(kSimEventsCancelled);
  cancelled_.insert(id);
  --live_;
  return true;
}

void EventQueue::drop_dead_head() {
  while (!heap_.empty()) {
    const Entry& head = heap_.top();
    auto it = cancelled_.find(head.id);
    if (it == cancelled_.end()) return;
    RTDB_PERF_COUNT(kSimDeadHeadDrops);
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  // Lazily purge cancelled entries from the head so the reported time is
  // that of a live event. Logically const: observable state is unchanged.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_head();
  if (heap_.empty()) return kTimeInfinity;
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  RTDB_PERF_TIMER(kSimPop);
  RTDB_PERF_COUNT(kSimEventsFired);
  drop_dead_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  // priority_queue::top() returns const&; moving the callback out is safe
  // because the entry is popped immediately afterwards.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  pending_.erase(fired.id);
  --live_;
  return fired;
}

}  // namespace rtdb::sim
