#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file stats.hpp
/// Measurement primitives used by the experiment harness: counters,
/// numerically stable running means (Welford), full-sample quantile
/// estimators, and time-weighted averages (utilizations, queue lengths).

namespace rtdb::sim {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Running mean / variance via Welford's algorithm; O(1) memory.
class MeanAccumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }

  /// Population variance (n in the denominator); 0 when n < 2.
  [[nodiscard]] double variance() const {
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = MeanAccumulator{}; }

  /// Pools another accumulator into this one (parallel-merge formula).
  void merge(const MeanAccumulator& o);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram with log-spaced bounds over [lo, hi); samples
/// below lo / at-or-above hi land in underflow/overflow. Built by
/// SampleStats::log_histogram() and consumed by the JSON metrics exporter.
struct Histogram {
  double lo = 0;
  double hi = 0;
  std::vector<double> edges;          ///< buckets+1 edges, edges[0] == lo
  std::vector<std::uint64_t> counts;  ///< one count per bucket
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;

  [[nodiscard]] std::uint64_t total() const;
};

/// Retains every sample; supports exact quantiles. Intended for run-level
/// metrics (response times, slack) where sample counts stay modest (<1e7).
class SampleStats {
 public:
  void add(double x) {
    samples_.push_back(x);
    acc_.add(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return acc_.mean(); }
  [[nodiscard]] double stddev() const { return acc_.stddev(); }
  [[nodiscard]] double min() const { return acc_.min(); }
  [[nodiscard]] double max() const { return acc_.max(); }

  /// Exact empirical quantile, q in [0, 1]. 0 when empty.
  double quantile(double q);

  /// Median shorthand.
  double median() { return quantile(0.5); }

  /// Pools another estimator's samples into this one (cross-seed merging).
  void merge(const SampleStats& o);

  /// Buckets the samples into `buckets` log-spaced bins covering [lo, hi)
  /// (lo must be > 0, hi > lo, buckets >= 1). Works on empty stats too:
  /// the edges are always populated, counts are all zero.
  [[nodiscard]] Histogram log_histogram(double lo, double hi,
                                        std::size_t buckets) const;

  void reset();

 private:
  std::vector<double> samples_;
  MeanAccumulator acc_;
  bool sorted_ = true;
};

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// busy executors or a queue length. Call set() at every change; read
/// average(now) at the end of the run.
class TimeWeighted {
 public:
  explicit TimeWeighted(double initial = 0, SimTime start = SimTime{})
      : value_(initial), last_change_(start), origin_(start) {}

  /// Records that the signal takes value `v` from time `now` on.
  void set(double v, SimTime now) {
    accumulate(now);
    value_ = v;
  }

  /// Adds `dv` to the current value at time `now`.
  void add(double dv, SimTime now) { set(value_ + dv, now); }

  [[nodiscard]] double current() const { return value_; }

  /// Time-average over [start, now].
  double average(SimTime now) {
    accumulate(now);
    const Duration span = last_change_ - origin_;
    return span > Duration::zero() ? area_ / span.sec() : value_;
  }

  /// Restarts the averaging window at `now`, keeping the current value.
  void reset_window(SimTime now) {
    value_ = current();
    area_ = 0;
    last_change_ = now;
    origin_ = now;
  }

 private:
  void accumulate(SimTime now) {
    if (now > last_change_) {
      area_ += value_ * (now - last_change_).sec();
      last_change_ = now;
    }
  }

  double value_;
  double area_ = 0;
  SimTime last_change_;
  SimTime origin_;
};

}  // namespace rtdb::sim
