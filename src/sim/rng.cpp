#include "sim/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace rtdb::sim {

ZipfDistribution::ZipfDistribution(std::size_t n, double theta)
    : theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  if (theta < 0) throw std::invalid_argument("ZipfDistribution: theta >= 0");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = acc;
  }
  // Normalize so the last entry is exactly 1 (guards the binary search).
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace rtdb::sim
