#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <iosfwd>
#include <string>

#include "common/ids.hpp"
#include "sim/time.hpp"

/// \file trace.hpp
/// Structured event tracing for simulations. Every interesting protocol
/// step (grants, recalls, windows, ships, arbitrations, commits) can emit
/// a timestamped event into a bounded ring; tests assert on sequences and
/// humans dump the tail when a run misbehaves. Disabled categories cost
/// one branch per call site.
///
/// Enable programmatically (`trace.enable(TraceCategory::kLock)`) or via
/// the environment: `RTDB_TRACE=lock,cache,txn` (or `all`).

namespace rtdb::sim {

/// Event categories (bitmask).
enum class TraceCategory : std::uint32_t {
  kNone = 0,
  kLock = 1u << 0,     ///< grants, recalls, returns, deadlocks
  kCache = 1u << 1,    ///< insertions, evictions, hits
  kNet = 1u << 2,      ///< message send/deliver
  kTxn = 1u << 3,      ///< lifecycle: admit, ready, commit, miss
  kWindow = 1u << 4,   ///< collection windows, forward lists
  kShip = 1u << 5,     ///< transaction shipping / decomposition
  kSpec = 1u << 6,     ///< speculation arbitration
  kAll = 0xffffffffu,
};

constexpr std::uint32_t operator|(TraceCategory a, TraceCategory b) {
  return static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b);
}

/// Bounded in-memory event log.
class TraceLog {
 public:
  /// One recorded event.
  struct Event {
    SimTime time{};
    TraceCategory category = TraceCategory::kNone;
    SiteId site = kInvalidSite;  ///< emitting site (kInvalidSite = system)
    std::string text;
  };

  explicit TraceLog(std::size_t capacity = 65536) : capacity_(capacity) {}

  /// Enables categories (adds to the current mask).
  void enable(TraceCategory category) {
    mask_ |= static_cast<std::uint32_t>(category);
  }
  void enable_mask(std::uint32_t mask) { mask_ |= mask; }
  void disable_all() { mask_ = 0; }

  /// Applies `RTDB_TRACE` (comma-separated category names or "all").
  /// Returns the resulting mask.
  std::uint32_t enable_from_env();

  /// Cheap per-call-site check.
  [[nodiscard]] bool enabled(TraceCategory category) const {
    return (mask_ & static_cast<std::uint32_t>(category)) != 0;
  }
  [[nodiscard]] bool active() const { return mask_ != 0; }

  /// Records an event (call only when enabled(category)).
  void emit(SimTime time, TraceCategory category, SiteId site,
            std::string text);

  /// printf-style convenience.
  void emitf(SimTime time, TraceCategory category, SiteId site,
             const char* fmt, ...) __attribute__((format(printf, 5, 6)));

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Writes the last `last_n` events (0 = all retained) to `os`.
  void dump(std::ostream& os, std::size_t last_n = 0) const;

  /// Name of a single category ("lock", "cache", ...).
  static const char* name(TraceCategory category);

 private:
  std::size_t capacity_;
  std::uint32_t mask_ = 0;
  std::deque<Event> events_;
  std::size_t dropped_ = 0;
};

}  // namespace rtdb::sim
