#include "sim/simulator.hpp"

namespace rtdb::sim {

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const SimTime t = queue_.next_time();
    if (t > horizon) break;
    auto fired = queue_.pop();
    now_ = fired.time;
    fired.fn();
    ++executed_;
    maybe_audit();
    if (++ran > event_limit_) {
      throw std::runtime_error(
          "Simulator: event limit exceeded (runaway event loop?)");
    }
  }
  // The clock still advances to the horizon so back-to-back run_until calls
  // behave like one continuous run even across quiet periods.
  if (is_finite_time(horizon) && horizon > now_) now_ = horizon;
  return ran;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  fired.fn();
  ++executed_;
  maybe_audit();
  return true;
}

}  // namespace rtdb::sim
