#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

/// \file event_queue.hpp
/// Priority queue of timestamped events with deterministic tie-breaking.

namespace rtdb::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
using EventId = std::uint64_t;

/// Invalid / "no event" id.
inline constexpr EventId kNoEvent = 0;

/// A time-ordered queue of callbacks.
///
/// Two events scheduled for the same instant fire in the order they were
/// scheduled (FIFO within a timestamp), which makes whole-cluster simulations
/// reproducible run-to-run for a fixed seed.
///
/// Cancellation is lazy: `cancel()` marks the event dead and `pop()` skips
/// dead entries, so both operations stay O(log n).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// A scheduled (time, callback) pair ready to execute.
  struct Fired {
    SimTime time{};
    EventId id = kNoEvent;
    Callback fn;
  };

  EventQueue() = default;

  /// Schedules `fn` to fire at absolute time `at`. Returns a handle usable
  /// with `cancel()`. `at` may equal the current head time; ordering among
  /// equal timestamps is schedule order.
  EventId schedule(SimTime at, Callback fn);

  /// Cancels a previously scheduled event. Returns false if the event
  /// already fired, was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live (not cancelled, not fired) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the next live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the next live event. Precondition: !empty().
  Fired pop();

  /// Invariant audit: the live count equals the pending set, every heap
  /// entry is accounted as exactly one of pending/cancelled, and the two
  /// sets never overlap. Aborts on violation.
  void validate_invariants() const;

 private:
  struct Entry {
    SimTime time;
    EventId id;   // doubles as the schedule-order tiebreaker (monotonic)
    Callback fn;  // empty when cancelled
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void drop_dead_head();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    // live ids currently in heap_
  std::unordered_set<EventId> cancelled_;  // ids cancelled but still in heap_
  std::size_t live_ = 0;
  EventId next_id_ = 1;
};

}  // namespace rtdb::sim
