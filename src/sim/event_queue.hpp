#pragma once

#include <cstdint>
#include <vector>

#include "common/small_function.hpp"
#include "sim/time.hpp"

/// \file event_queue.hpp
/// Priority queue of timestamped events with deterministic tie-breaking.

namespace rtdb::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
/// Encodes (generation << 32) | (slot + 1): the low half names a slab slot,
/// the high half is that slot's generation at schedule time, so a handle
/// kept past its event's firing can never cancel the slot's next tenant.
using EventId = std::uint64_t;

/// Invalid / "no event" id (no slot encoding ever produces 0).
inline constexpr EventId kNoEvent = 0;

/// A time-ordered queue of callbacks.
///
/// Two events scheduled for the same instant fire in the order they were
/// scheduled (FIFO within a timestamp), which makes whole-cluster simulations
/// reproducible run-to-run for a fixed seed.
///
/// Storage is a generation-tagged slab: each scheduled event occupies one
/// recycled slot (free-list, O(1) alloc/free, no hashing), and a 4-ary
/// heap orders lightweight 24-byte {time, seq, slot} items rather than whole
/// entries. `schedule()` therefore performs zero heap allocations in steady
/// state — the dominant cost of the old `priority_queue<Entry>` + two
/// `unordered_set<EventId>` design. Cancellation stays lazy: `cancel()`
/// marks the slot dead in O(1) and the head purge skips dead entries.
class EventQueue {
 public:
  using Callback = common::SmallFunction<void()>;

  /// A scheduled (time, callback) pair ready to execute.
  struct Fired {
    SimTime time{};
    EventId id = kNoEvent;
    Callback fn;
  };

  EventQueue() = default;

  /// Schedules `fn` to fire at absolute time `at`. Returns a handle usable
  /// with `cancel()`. `at` may equal the current head time; ordering among
  /// equal timestamps is schedule order.
  EventId schedule(SimTime at, Callback fn);

  /// Cancels a previously scheduled event. Returns false if the event
  /// already fired, was already cancelled, or never existed. O(1): the id
  /// names its slot directly and the generation tag rejects stale handles.
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live (not cancelled, not fired) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the next live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the next live event. Precondition: !empty().
  Fired pop();

  /// Invariant audit: per-state slot counts match the live/cancelled
  /// tallies, heap items map 1:1 onto non-free slots (sequence numbers
  /// agree), the free list is acyclic and accounts for every free slot, and
  /// the heap order property holds. Aborts on violation.
  void validate_invariants() const;

 private:
  enum : std::uint8_t { kFree = 0, kLive = 1, kCancelled = 2 };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Heap fan-out (4-ary: shallower sifts, children share cache lines).
  static constexpr std::size_t kHeapArity = 4;

  struct Slot {
    SimTime time{};
    std::uint64_t seq = 0;  ///< schedule order; the FIFO tie-breaker
    std::uint32_t gen = 0;  ///< bumped when the slot is freed
    std::uint32_t next_free = kNoSlot;
    std::uint8_t state = kFree;
    Callback fn;  ///< destroyed on cancel; moved out on pop
  };

  /// What the heap actually sifts: 24 bytes, trivially copyable.
  struct HeapItem {
    SimTime time{};
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) |
           static_cast<EventId>(slot + 1);
  }

  static bool earlier(const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_push(HeapItem item);
  void heap_pop();
  void drop_dead_head();

  std::vector<HeapItem> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::size_t cancelled_ = 0;  ///< cancelled slots still referenced by heap_
};

}  // namespace rtdb::sim
