#include "sim/trace.hpp"

#include <cstdlib>
#include <cstring>
#include <ostream>

namespace rtdb::sim {

std::uint32_t TraceLog::enable_from_env() {
  const char* env = std::getenv("RTDB_TRACE");
  if (!env || !*env) return mask_;
  std::string spec(env);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (token == "all") {
      enable(TraceCategory::kAll);
    } else if (token == "lock") {
      enable(TraceCategory::kLock);
    } else if (token == "cache") {
      enable(TraceCategory::kCache);
    } else if (token == "net") {
      enable(TraceCategory::kNet);
    } else if (token == "txn") {
      enable(TraceCategory::kTxn);
    } else if (token == "window") {
      enable(TraceCategory::kWindow);
    } else if (token == "ship") {
      enable(TraceCategory::kShip);
    } else if (token == "spec") {
      enable(TraceCategory::kSpec);
    }
    pos = comma + 1;
  }
  return mask_;
}

void TraceLog::emit(SimTime time, TraceCategory category, SiteId site,
                    std::string text) {
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(Event{time, category, site, std::move(text)});
}

void TraceLog::emitf(SimTime time, TraceCategory category, SiteId site,
                     const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  emit(time, category, site, buf);
}

void TraceLog::dump(std::ostream& os, std::size_t last_n) const {
  std::size_t start = 0;
  if (last_n != 0 && last_n < events_.size()) {
    start = events_.size() - last_n;
  }
  for (std::size_t i = start; i < events_.size(); ++i) {
    const Event& e = events_[i];
    char head[64];
    std::snprintf(head, sizeof(head), "[%12.6f] %-6s s%-3d ", e.time.sec(),
                  name(e.category), e.site.value());
    os << head << e.text << '\n';
  }
}

const char* TraceLog::name(TraceCategory category) {
  switch (category) {
    case TraceCategory::kLock: return "lock";
    case TraceCategory::kCache: return "cache";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kTxn: return "txn";
    case TraceCategory::kWindow: return "window";
    case TraceCategory::kShip: return "ship";
    case TraceCategory::kSpec: return "spec";
    case TraceCategory::kNone: return "none";
    case TraceCategory::kAll: return "all";
  }
  return "?";
}

}  // namespace rtdb::sim
