#pragma once

#include <algorithm>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

/// \file resource.hpp
/// A FIFO single-server resource with utilization accounting — models any
/// serial bottleneck: a CPU handling protocol messages, the per-transaction
/// overhead path of the centralized server, a forwarding daemon.

namespace rtdb::sim {

/// Work submitted occupies the resource for its service time, FIFO.
class SerialResource {
 public:
  explicit SerialResource(Simulator& sim) : sim_(sim) {}

  SerialResource(const SerialResource&) = delete;
  SerialResource& operator=(const SerialResource&) = delete;

  /// Enqueues `service` seconds of work; `done` (optional) runs at
  /// completion. Returns the completion instant.
  SimTime submit(Duration service, Simulator::Callback done = {}) {
    const SimTime start = std::max(sim_.now(), free_at_);
    free_at_ = start + service;
    busy_accum_ += service;
    if (done) sim_.at(free_at_, std::move(done));
    return free_at_;
  }

  /// Earliest instant new work could start.
  [[nodiscard]] SimTime free_at() const { return free_at_; }

  /// Current backlog (seconds of queued work beyond now).
  [[nodiscard]] Duration backlog() const {
    return std::max(Duration::zero(), free_at_ - sim_.now());
  }

  /// Fraction of time busy in the current accounting window.
  double utilization() const {
    const Duration span = sim_.now() - stats_epoch_;
    if (span <= Duration::zero()) return 0;
    return std::min(1.0, busy_accum_ / span);
  }

  void reset_stats() {
    busy_accum_ = Duration::zero();
    stats_epoch_ = sim_.now();
  }

 private:
  Simulator& sim_;
  SimTime free_at_{};
  Duration busy_accum_{};  ///< total busy time in the accounting window
  SimTime stats_epoch_{};
};

}  // namespace rtdb::sim
