#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

/// \file rng.hpp
/// Seedable random number generation and the distributions used by the
/// ICDCS'99 workload: Uniform, Exponential (transaction lengths, deadlines,
/// Poisson inter-arrivals) and Zipf (skewed shared-region accesses).
///
/// We implement xoshiro256** seeded via SplitMix64 rather than relying on
/// std::mt19937_64 so that streams are cheap to split per-client (one
/// independent deterministic stream per workload source).

namespace rtdb::sim {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state and
/// to derive independent per-client sub-seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += UINT64_C(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)) * UINT64_C(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)) * UINT64_C(0x94D049BB133111EB);
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
///
/// Satisfies std::uniform_random_bit_generator so it also plugs into
/// standard-library distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds give equal streams.
  explicit Rng(std::uint64_t seed = UINT64_C(0x9E3779B97F4A7C15)) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  /// Raw 64 random bits.
  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return lo + bounded(hi - lo + 1);
  }

  /// Exponential variate with the given mean (not rate). mean > 0.
  double exponential(double mean) {
    assert(mean > 0);
    // 1 - uniform01() lies in (0, 1], so the log is finite.
    return -mean * std::log1p(-uniform01());
  }

  /// Bernoulli trial: true with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Derives an independent generator (e.g. one per simulated client).
  Rng split() {
    return Rng((*this)() ^ UINT64_C(0xD1B54A32D192ED03));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded integer in [0, n) via Lemire's method (n == 0 -> 0).
  std::uint64_t bounded(std::uint64_t n) {
    if (n == 0) return 0;  // full 2^64 range requested: wraps to raw draw
    // Rejection sampling on the top of the range removes modulo bias.
    const std::uint64_t threshold = (-n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  std::uint64_t s_[4];
};

/// Zipf(θ)-distributed integers over {0, 1, ..., n-1}; rank 0 is hottest.
///
/// P(k) ∝ 1 / (k+1)^θ. Sampling is O(log n) via binary search over the
/// precomputed CDF (the workload dimensions — a 10,000-object database — make
/// the O(n) table trivially affordable and exact).
class ZipfDistribution {
 public:
  /// n >= 1 items, skew theta >= 0 (theta = 0 degenerates to Uniform).
  ZipfDistribution(std::size_t n, double theta);

  /// Samples a rank in [0, n).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  std::vector<double> cdf_;
  double theta_;
};

}  // namespace rtdb::sim
